(* The range-shard router: N independent cLSM instances behind one
   {!Store_sig.S}, each owning a contiguous key range and a private
   directory, all drawing timestamps from ONE shared {!Clock} — so the
   union of their histories is a single serializable history and one
   fenced snapshot timestamp is consistent across every shard.

   Point operations route to the owning shard and inherit its lock-free
   paths unchanged; contended structures (memtable, WAL tail, flush
   pipeline) multiply by N. Cross-shard consistency costs exactly one
   extra lock:

   - [get_snap] runs ONE [Clock.snap_ts] fence and registers ONE
     registry entry; per-shard views at that timestamp are materialized
     with [S.snapshot_at] (no fence, no registration).
   - [write_batch] stamps each shard's sub-batch with a bare
     [Clock.batch_ts] (no Active registration) — legal only while no
     snapshot fence can observe the written keys. The router-level
     shared-exclusive lock provides that exclusion: batches hold it in
     SHARED mode (batches on different shards proceed concurrently;
     same-shard batches serialize on the shard's own exclusive lock),
     cross-shard [get_snap] holds it in EXCLUSIVE mode. No snapshot
     timestamp can land between two sub-batches of one router batch,
     so the batch is atomic under every router snapshot. Plain [get]s
     do not take the lock and may observe a prefix, exactly like the
     single-store contract.
   - Deadlock-freedom: router [get_snap] takes no shard lock; a router
     batch holds router-shared and at most one shard-exclusive at a
     time; shards never take the router lock.

   Maintenance is arbitrated by ONE shared scheduler: shards are opened
   with [external_maintenance] (no private pools), their wake signals
   are re-pointed at the shared pool, and the pool's [next] round-robins
   over shards' claim queues, wrapping claims as [Job.In_shard] so claim
   bookkeeping stays inside the owning shard. *)

open Clsm_primitives
open Clsm_lsm
module Env = Clsm_env.Env
module Job = Clsm_maintenance.Job
module Scheduler = Clsm_maintenance.Scheduler

(* ---------- the persisted sharding layout ---------- *)

(* The SHARDING file in the root directory records the boundary keys
   (hex, one per line) so a reopen routes exactly as the writer did —
   the file wins over whatever [Options.shards]/[shard_boundaries] say,
   because data already placed under the old boundaries cannot move. *)

let layout_file dir = Filename.concat dir "SHARDING"
let layout_magic = "clsm-sharding/1"

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex h =
  if String.length h mod 2 <> 0 then
    failwith "Sharded_store: odd-length hex boundary in SHARDING";
  String.init
    (String.length h / 2)
    (fun i ->
      try Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2))
      with _ -> failwith "Sharded_store: bad hex in SHARDING")

let persist_layout ~(env : Env.t) ~dir bounds =
  let tmp = layout_file dir ^ ".tmp" in
  let w = env.Env.create_writer tmp in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s %d\n" layout_magic (Array.length bounds + 1));
  Array.iter (fun k -> Buffer.add_string b (to_hex k ^ "\n")) bounds;
  w.Env.w_append (Buffer.contents b);
  w.Env.w_fsync ();
  w.Env.w_close ();
  env.Env.rename ~src:tmp ~dst:(layout_file dir)

let load_layout ~(env : Env.t) ~dir =
  let path = layout_file dir in
  if not (env.Env.file_exists path) then None
  else
    match String.split_on_char '\n' (String.trim (env.Env.read_file path)) with
    | header :: rest -> (
        match String.split_on_char ' ' header with
        | [ magic; n ] when magic = layout_magic ->
            let n =
              try int_of_string n
              with _ -> failwith "Sharded_store: bad shard count in SHARDING"
            in
            let bounds =
              rest |> List.filter (fun l -> l <> "") |> List.map of_hex
              |> Array.of_list
            in
            if Array.length bounds <> n - 1 then
              failwith "Sharded_store: SHARDING boundary count mismatch";
            Some bounds
        | _ -> failwith "Sharded_store: unrecognized SHARDING header")
    | [] -> failwith "Sharded_store: empty SHARDING file"

let validate_bounds ~shards bounds =
  if Array.length bounds <> shards - 1 then
    invalid_arg "Sharded_store: shard_boundaries must have length shards - 1";
  Array.iteri
    (fun i b ->
      if b = "" then invalid_arg "Sharded_store: empty shard boundary";
      if i > 0 && String.compare bounds.(i - 1) b >= 0 then
        invalid_arg "Sharded_store: shard boundaries must be strictly ascending")
    bounds

(* Byte-uniform default split: boundary j starts shard j at the single
   byte floor(j*256/n) — even coverage of the full byte keyspace, which
   real key distributions rarely are; pass explicit boundaries when the
   hot range is known. *)
let default_bounds n =
  if n > 256 then
    invalid_arg "Sharded_store: > 256 shards need explicit shard_boundaries";
  Array.init (n - 1) (fun j -> String.make 1 (Char.chr ((j + 1) * 256 / n)))

module Make (S : Store_sig.EXTENDED) = struct
  type t = {
    opts : Options.t;
    clock : Clock.t;
    shards : S.t array;
    bounds : string array; (* length = shards - 1, strictly ascending *)
    batch_lock : Shared_lock.t;
        (* batches shared / cross-shard getSnap exclusive, see above *)
    stats : Stats.t; (* router-level counters (snapshot fences) *)
    mutable scheduler : Scheduler.t option;
    rr : int Atomic.t; (* round-robin cursor of the shared [next] *)
    mutable closed : bool;
    close_mutex : Mutex.t;
  }

  (* Owning shard = number of boundaries <= key (binary search). *)
  let shard_index t key =
    let lo = ref 0 and hi = ref (Array.length t.bounds) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if String.compare t.bounds.(mid) key <= 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  let shard_of t key = t.shards.(shard_index t key)

  (* ---------- open / close ---------- *)

  let shard_dir root i = Filename.concat root (Printf.sprintf "shard-%d" i)

  let make_next t () =
    let n = Array.length t.shards in
    let start = Atomic.fetch_and_add t.rr 1 in
    let rec probe i =
      if i >= n then None
      else
        let s = (start + i) mod n in
        match S.maintenance_next t.shards.(s) with
        | Some job -> Some (Job.In_shard { shard = s; job })
        | None -> probe (i + 1)
    in
    probe 0

  let run_job t = function
    | Job.In_shard { shard; job } -> S.maintenance_run t.shards.(shard) job
    (* [make_next] only emits In_shard; anything else has no claim to
       release, so dropping it is safe. *)
    | Job.Flush | Job.Compact _ | Job.Repair | Job.Scrub -> ()

  let open_store (opts : Options.t) =
    let env = opts.Options.env in
    if not (env.Env.file_exists opts.Options.dir) then
      env.Env.mkdir opts.Options.dir;
    let bounds =
      match load_layout ~env ~dir:opts.Options.dir with
      | Some persisted -> persisted (* the directory's layout wins *)
      | None ->
          let n = opts.Options.shards in
          if n < 1 then
            invalid_arg "Sharded_store.open_store: shards must be >= 1";
          let bounds =
            match opts.Options.shard_boundaries with
            | Some bs ->
                let a = Array.of_list bs in
                validate_bounds ~shards:n a;
                a
            | None -> default_bounds n
          in
          persist_layout ~env ~dir:opts.Options.dir bounds;
          bounds
    in
    let n = Array.length bounds + 1 in
    let clock =
      match opts.Options.clock with
      | Some c -> c
      | None ->
          Clock.create ~active_set_capacity:opts.Options.active_set_capacity ()
    in
    let shard_opts i =
      {
        opts with
        Options.dir = shard_dir opts.Options.dir i;
        clock = Some clock;
        external_maintenance = true;
        shards = 1;
        shard_boundaries = None;
      }
    in
    (* If a later shard fails to open (corruption, injected fault), the
       already-opened ones must not leak their WAL writers. *)
    let opened = ref [] in
    let shards =
      try
        Array.init n (fun i ->
            let s = S.open_store (shard_opts i) in
            opened := s :: !opened;
            s)
      with e ->
        List.iter (fun s -> try S.close s with _ -> ()) !opened;
        raise e
    in
    let t =
      {
        opts;
        clock;
        shards;
        bounds;
        batch_lock = Shared_lock.create ();
        stats = Stats.create ();
        scheduler = None;
        rr = Atomic.make 0;
        closed = false;
        close_mutex = Mutex.create ();
      }
    in
    if not opts.Options.external_maintenance then begin
      let sched =
        Scheduler.create ~num_workers:opts.Options.maintenance_workers
          ~tick_interval:opts.Options.maintenance_tick ~next:(make_next t)
          ~run:(run_job t) ()
      in
      t.scheduler <- Some sched;
      Array.iter (fun s -> S.set_wake_hook s (fun () -> Scheduler.wake sched)) shards;
      Scheduler.start sched
    end;
    t

  let stop_scheduler t =
    match t.scheduler with
    | Some s ->
        Scheduler.stop s;
        t.scheduler <- None
    | None -> ()

  (* Close every shard even when one of them fails; the first failure
     still reaches the caller. *)
  let close_shards ~f t =
    let first = ref None in
    Array.iter
      (fun s -> try f s with e -> if !first = None then first := Some e)
      t.shards;
    match !first with Some e -> raise e | None -> ()

  let close t =
    Mutex.lock t.close_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.close_mutex)
      (fun () ->
        if not t.closed then begin
          t.closed <- true;
          stop_scheduler t;
          close_shards ~f:S.close t
        end)

  let simulate_crash t =
    Mutex.lock t.close_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.close_mutex)
      (fun () ->
        if not t.closed then begin
          t.closed <- true;
          stop_scheduler t;
          close_shards ~f:S.simulate_crash t
        end)

  (* ---------- point operations: route and delegate ---------- *)

  let put t ~key ~value = S.put (shard_of t key) ~key ~value
  let delete t ~key = S.delete (shard_of t key) ~key
  let get t key = S.get (shard_of t key) key

  type rmw_decision = Set of string | Remove | Abort

  let rmw t ~key f =
    S.rmw (shard_of t key) ~key (fun prev ->
        match f prev with
        | Set v -> S.Set v
        | Remove -> S.Remove
        | Abort -> S.Abort)

  let put_if_absent t ~key ~value = S.put_if_absent (shard_of t key) ~key ~value

  (* ---------- write batches ---------- *)

  type batch_op = Batch_put of string * string | Batch_delete of string

  let write_batch t ops =
    if ops <> [] then
      Shared_lock.with_shared t.batch_lock (fun () ->
          let per = Array.make (Array.length t.shards) [] in
          List.iter
            (fun op ->
              let key, sop =
                match op with
                | Batch_put (k, v) -> (k, S.Batch_put (k, v))
                | Batch_delete k -> (k, S.Batch_delete k)
              in
              let i = shard_index t key in
              per.(i) <- sop :: per.(i))
            ops;
          Array.iteri
            (fun i sub ->
              if sub <> [] then S.write_batch t.shards.(i) (List.rev sub))
            per)

  (* ---------- snapshots ---------- *)

  type snapshot = {
    snap_ts : int;
    handle : Snapshot_registry.handle option;
    released : bool Atomic.t;
  }

  let snapshot_mode t =
    if t.opts.Options.unsafe_naive_snapshots then Clock.Unsafe_naive
    else if t.opts.Options.linearizable_snapshots then Clock.Linearizable
    else Clock.Serializable

  (* ONE fence, ONE registry entry, valid across every shard (they share
     the clock). Exclusive mode excludes in-flight router batches so
     their bare batch timestamps stay unobservable — see the header. *)
  let get_snap ?ttl t =
    Stats.incr_snapshots t.stats;
    Shared_lock.lock_exclusive t.batch_lock;
    let ts = Clock.snap_ts t.clock ~mode:(snapshot_mode t) in
    let handle =
      Clock.register_snapshot t.clock ?ttl ~now:(Unix.gettimeofday ()) ts
    in
    Shared_lock.unlock_exclusive t.batch_lock;
    { snap_ts = ts; handle; released = Atomic.make false }

  let snapshot_ts s = s.snap_ts

  let release_snapshot t s =
    if not (Atomic.exchange s.released true) then
      match s.handle with
      | Some h -> Clock.release_snapshot t.clock h
      | None -> ()

  let get_at t s key =
    if Atomic.get s.released then
      invalid_arg "Sharded_store.get_at: released snapshot";
    let shard = shard_of t key in
    S.get_at shard (S.snapshot_at shard ~ts:s.snap_ts) key

  let multi_get t keys =
    let s = get_snap t in
    let result = List.map (fun k -> (k, get_at t s k)) keys in
    release_snapshot t s;
    result

  (* ---------- cross-shard iterators / scans ---------- *)

  type iterator = {
    snap : snapshot;
    own_snapshot : bool;
    merged : Iter.t;
    subs : S.iterator array;
    router : t;
    mutable it_closed : bool;
  }

  let iter_of_sub sit =
    {
      Iter.seek_to_first = (fun () -> S.iter_seek_first sit);
      seek = (fun target -> S.iter_seek sit target);
      valid = (fun () -> S.iter_valid sit);
      key = (fun () -> S.iter_key sit);
      value = (fun () -> S.iter_value sit);
      next = (fun () -> S.iter_next sit);
    }

  (* Each shard contributes its snapshot-filtered iterator (already
     collapsed to visible user keys); the per-shard views are clamped to
     the shard's [lo, hi) range — routing makes the clamp a no-op, but
     it turns any routing bug into missing keys instead of a
     mis-ordered merge — and merged on user-key order. Disjoint ranges
     make the merge degenerate to concatenation; the k-way machinery is
     shared with the LSM read path. *)
  let iterator ?snapshot t =
    let snap, own_snapshot =
      match snapshot with Some s -> (s, false) | None -> (get_snap t, true)
    in
    let subs =
      Array.map
        (fun sh -> S.iterator ~snapshot:(S.snapshot_at sh ~ts:snap.snap_ts) sh)
        t.shards
    in
    let clamped =
      Array.to_list
        (Array.mapi
           (fun i sit ->
             let lo = if i = 0 then None else Some t.bounds.(i - 1) in
             let hi =
               if i = Array.length t.bounds then None else Some t.bounds.(i)
             in
             Iter.clamp ?lo ?hi ~cmp:String.compare (iter_of_sub sit))
           subs)
    in
    let merged = Merge_iter.merge ~cmp:String.compare clamped in
    { snap; own_snapshot; merged; subs; router = t; it_closed = false }

  let iter_seek_first it = it.merged.Iter.seek_to_first ()
  let iter_seek it target = it.merged.Iter.seek target
  let iter_valid it = it.merged.Iter.valid ()

  let iter_key it =
    if not (iter_valid it) then
      invalid_arg "Sharded_store.iter_key: invalid iterator"
    else it.merged.Iter.key ()

  let iter_value it =
    if not (iter_valid it) then
      invalid_arg "Sharded_store.iter_value: invalid iterator"
    else it.merged.Iter.value ()

  let iter_next it = it.merged.Iter.next ()

  let iter_close it =
    if not it.it_closed then begin
      it.it_closed <- true;
      Array.iter S.iter_close it.subs;
      if it.own_snapshot then release_snapshot it.router it.snap
    end

  let range ?snapshot ?start ?stop ?(limit = max_int) t =
    let it = iterator ?snapshot t in
    (match start with
    | Some s -> iter_seek it s
    | None -> iter_seek_first it);
    let rec collect n acc =
      if n >= limit || not (iter_valid it) then List.rev acc
      else
        let k = iter_key it in
        match stop with
        | Some e when k >= e -> List.rev acc
        | Some _ | None ->
            let v = iter_value it in
            iter_next it;
            collect (n + 1) ((k, v) :: acc)
    in
    let result = collect 0 [] in
    iter_close it;
    result

  let fold ?snapshot f t acc =
    let it = iterator ?snapshot t in
    iter_seek_first it;
    let rec go acc =
      if iter_valid it then begin
        let k = iter_key it and v = iter_value it in
        iter_next it;
        go (f k v acc)
      end
      else acc
    in
    let result = go acc in
    iter_close it;
    result

  (* ---------- maintenance / introspection ---------- *)

  let compact_now t = Array.iter S.compact_now t.shards
  let flush_wal t = Array.iter S.flush_wal t.shards

  (* Scan/get/put counters live in the shards (a cross-shard scan opens
     one iterator per shard and counts as such); the router adds only
     what the shards cannot see — the cross-shard snapshot fences. *)
  let stats t =
    Stats.merge_all
      (Stats.read t.stats
      :: Array.to_list (Array.map (fun s -> S.stats s) t.shards))

  let options t = t.opts

  (* Worst shard wins: one degraded shard makes the whole keyspace
     partially unwritable, one partial shard means some key range is on
     reduced redundancy. Faults stay isolated per shard — the reasons
     name the shards so an operator can see the blast radius. *)
  let health t =
    let degraded = ref [] and partial = ref [] in
    Array.iteri
      (fun i s ->
        match S.health s with
        | `Ok -> ()
        | `Partial reason ->
            partial := Printf.sprintf "shard %d: %s" i reason :: !partial
        | `Degraded reason ->
            degraded := Printf.sprintf "shard %d: %s" i reason :: !degraded)
      t.shards;
    match (List.rev !degraded, List.rev !partial) with
    | [], [] -> `Ok
    | [], partials -> `Partial (String.concat "; " partials)
    | reasons, _ -> `Degraded (String.concat "; " reasons)

  let scrub_now t =
    Array.to_list t.shards
    |> List.mapi (fun i s ->
           List.map (Printf.sprintf "shard %d: %s" i) (S.scrub_now s))
    |> List.concat

  let repair_now t =
    Array.iter (fun s -> ignore (S.repair_now s)) t.shards;
    health t

  let level_file_counts t =
    Array.fold_left
      (fun acc s ->
        let counts = Array.of_list (S.level_file_counts s) in
        Array.init
          (max (Array.length acc) (Array.length counts))
          (fun i ->
            let at (a : int array) = if i < Array.length a then a.(i) else 0 in
            at acc + at counts))
      [||] t.shards
    |> Array.to_list

  let memtable_bytes t =
    Array.fold_left (fun acc s -> acc + S.memtable_bytes s) 0 t.shards

  let cache_stats t =
    Array.fold_left
      (fun (acc : Clsm_sstable.Cache.stats) s ->
        let c = S.cache_stats s in
        Clsm_sstable.Cache.
          {
            hits = acc.hits + c.hits;
            misses = acc.misses + c.misses;
            evictions = acc.evictions + c.evictions;
            weight = acc.weight + c.weight;
            pins = acc.pins + c.pins;
            singleflight_waits = acc.singleflight_waits + c.singleflight_waits;
            readaheads = acc.readaheads + c.readaheads;
            readahead_blocks = acc.readahead_blocks + c.readahead_blocks;
          })
      Clsm_sstable.Cache.
        {
          hits = 0;
          misses = 0;
          evictions = 0;
          weight = 0;
          pins = 0;
          singleflight_waits = 0;
          readaheads = 0;
          readahead_blocks = 0;
        }
      t.shards

  let verify_integrity t =
    Array.to_list t.shards
    |> List.mapi (fun i s ->
           List.map (Printf.sprintf "shard %d: %s" i) (S.verify_integrity s))
    |> List.concat

  (* Repair each shard directory independently; a directory that never
     was sharded (no SHARDING file, no shard-* subdirs) is repaired as a
     single store. *)
  let repair ?(env = Env.unix) ~dir () =
    let entries = try env.Env.list_dir dir with Env.Error _ -> [] in
    let shard_dirs =
      entries
      |> List.filter (fun name ->
             String.length name > 6 && String.sub name 0 6 = "shard-")
      |> List.sort compare
    in
    if shard_dirs = [] then S.repair ~env ~dir ()
    else
      List.iter
        (fun name -> S.repair ~env ~dir:(Filename.concat dir name) ())
        shard_dirs

  (* ---------- router-specific introspection ---------- *)

  let shard_count t = Array.length t.shards
  let shard_boundaries t = Array.to_list t.bounds
  let shard_stats t = Array.map (fun s -> S.stats s) t.shards
  let shard_healths t = Array.map (fun s -> S.health s) t.shards
end
