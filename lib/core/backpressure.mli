(** Graduated write backpressure (after Luo & Carey, "On Performance
    Stability in LSM-based Storage Systems").

    The seed store had a binary stall: writers ran at full speed until
    L0 reached [l0_stall_limit], then busy-waited. That produces a
    sawtooth — bursts of maximum ingest alternating with multi-second
    write outages. This controller adds a soft threshold
    ([l0_slowdown_trigger]): between soft and hard limits each put is
    delayed by an amount that grows quadratically with L0 depth, up to
    [max_delay_ns], shaving ingest smoothly so compaction can keep up
    and the hard stop is rarely hit. The hard conditions (L0 at the
    stall limit, or the memtable overfull while its predecessor is still
    merging, paper §5.3) still stop the writer, with exponential
    backoff, until maintenance catches up. *)

type config = {
  soft_l0 : int;  (** L0 file count where delays begin *)
  hard_l0 : int;  (** L0 file count where writers stop *)
  max_delay_ns : int;  (** delay at [hard_l0 - 1] *)
}

val config_of_options : Options.t -> config

type observation = {
  stopped : bool;  (** store shutting down: admit immediately *)
  mem_full : bool;  (** active memtable over twice its budget *)
  imm_busy : bool;  (** previous memtable still merging *)
  l0_files : int;
}

type t

val create : config:config -> stats:Stats.t -> t

val delay_ns : config -> l0_files:int -> int
(** Pure delay curve: [0] below [soft_l0], then a quadratic ramp
    reaching [max_delay_ns] at [hard_l0 - 1]. Exposed for direct
    property testing. *)

val admit : t -> observe:(unit -> observation) -> wake:(unit -> unit) -> unit
(** Gate one write. Re-observes via [observe] while a hard condition
    holds (calling [wake] once per stall episode so the scheduler runs),
    then injects the graduated delay, recording stall and slowdown
    statistics. Returns promptly once admitted. *)
