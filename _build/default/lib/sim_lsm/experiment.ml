open Clsm_sim
open Clsm_workload

type config = {
  system : System.t;
  threads : int;
  workload : Workload_spec.t;
  costs : Costs.t;
  memtable_bytes : int;
  duration : float;
  compaction_threads : int;
  write_amplification : float option;
  throttle : bool;
  prefill : float;
  initial_l0 : int;
  seed : int;
}

let config ?(costs = Costs.default) ?(memtable_bytes = 128 * 1024 * 1024)
    ?(duration = 2.0) ?(compaction_threads = 1) ?write_amplification
    ?(throttle = false) ?(prefill = 0.5) ?(initial_l0 = 0) ?(seed = 1) ~system
    ~threads workload =
  {
    system;
    threads;
    workload;
    costs;
    memtable_bytes;
    duration;
    compaction_threads;
    write_amplification;
    throttle;
    prefill;
    initial_l0;
    seed;
  }

type outcome = {
  system : System.t;
  threads : int;
  ops : int;
  keys : int;
  throughput : float;
  keys_per_sec : float;
  p50 : float;
  p90 : float;
  p99 : float;
  stalls : int;
  rotations : int;
}

type counters = { mutable ops : int; mutable keys : int }

let spawn_workers (cfg : config) machine store counters hist =
  let base = Rng.create cfg.seed in
  for _ = 1 to cfg.threads do
    let rng = Rng.create (Rng.next base) in
    let rec step () =
      if Engine.now machine.Sim_store.engine < cfg.duration then begin
        let op = Workload_spec.next_op cfg.workload rng in
        let t0 = Engine.now machine.Sim_store.engine in
        (Sim_store.do_op store op) (fun keys ->
            Histogram.record hist (Engine.now machine.Sim_store.engine -. t0);
            counters.ops <- counters.ops + 1;
            counters.keys <- counters.keys + keys;
            step ())
      end
    in
    (* stagger start times so same-cost ops do not phase-lock *)
    Engine.schedule_after machine.Sim_store.engine
      (Rng.float rng *. 1e-5)
      step
  done

let outcome_of (cfg : config) ~ops ~keys ~stalls ~rotations hist =
  {
    system = cfg.system;
    threads = cfg.threads;
    ops;
    keys;
    throughput = float_of_int ops /. cfg.duration;
    keys_per_sec = float_of_int keys /. cfg.duration;
    p50 = Histogram.percentile hist 50.0;
    p90 = Histogram.percentile hist 90.0;
    p99 = Histogram.percentile hist 99.0;
    stalls;
    rotations;
  }

let make_store ?machine_threads ?per_op_overhead (cfg : config) machine
    ~threads ~seed =
  Sim_store.create ~machine ~costs:cfg.costs ~system:cfg.system ~threads
    ?machine_threads ?per_op_overhead ~workload:cfg.workload
    ~memtable_bytes:cfg.memtable_bytes
    ~compaction_threads:cfg.compaction_threads
    ?write_amplification:cfg.write_amplification ~throttle:cfg.throttle
    ~stop_at:cfg.duration ~prefill:cfg.prefill ~initial_l0:cfg.initial_l0 ~seed
    ()

let run (cfg : config) =
  let engine = Engine.create () in
  let machine = Sim_store.machine_of cfg.costs engine in
  let store = make_store cfg machine ~threads:cfg.threads ~seed:cfg.seed in
  Sim_store.start_background store;
  let counters = { ops = 0; keys = 0 } in
  let hist = Histogram.create () in
  spawn_workers cfg machine store counters hist;
  Engine.run_all engine;
  outcome_of cfg ~ops:counters.ops ~keys:counters.keys
    ~stalls:(Sim_store.stalls store)
    ~rotations:(Sim_store.rotations store)
    hist

let run_partitioned ~partitions (cfg : config) =
  if partitions < 1 || cfg.threads mod partitions <> 0 then
    invalid_arg "Experiment.run_partitioned";
  let engine = Engine.create () in
  let machine = Sim_store.machine_of cfg.costs engine in
  let per = cfg.threads / partitions in
  let counters = { ops = 0; keys = 0 } in
  let hist = Histogram.create () in
  let stalls = ref 0 and rotations = ref 0 in
  let stores =
    List.init partitions (fun i ->
        (* NOTE: per-partition thread count drives the contention model,
           matching "each small partition is served by a dedicated one
           quarter of the thread pool". *)
        let sub = { cfg with threads = per; seed = cfg.seed + (i * 7919) } in
        (* §2.2: many partitions carry routing and per-partition metadata
           costs; consolidated deployments avoid them. *)
        let store =
          make_store ~machine_threads:cfg.threads ~per_op_overhead:3.0e-6 sub
            machine ~threads:per ~seed:sub.seed
        in
        Sim_store.start_background store;
        spawn_workers sub machine store counters hist;
        store)
  in
  Engine.run_all engine;
  List.iter
    (fun s ->
      stalls := !stalls + Sim_store.stalls s;
      rotations := !rotations + Sim_store.rotations s)
    stores;
  outcome_of cfg ~ops:counters.ops ~keys:counters.keys ~stalls:!stalls
    ~rotations:!rotations hist
