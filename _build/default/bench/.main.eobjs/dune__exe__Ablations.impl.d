bench/ablations.ml: Array Atomic Clsm_core Clsm_lsm Clsm_sim_lsm Clsm_workload Costs Domain Experiment Filename List Printf String Sys System Unix Workload_spec
