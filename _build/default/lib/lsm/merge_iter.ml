(* Linear-scan minimum over the sub-iterators: the fan-in of an LSM merge
   is small (a handful of components), so O(k) per step beats heap
   bookkeeping in both simplicity and constant factor. *)

let merge ~cmp subs =
  let subs = Array.of_list subs in
  let n = Array.length subs in
  let cur = ref (-1) in
  let recompute () =
    cur := -1;
    for i = n - 1 downto 0 do
      if subs.(i).Iter.valid () then
        if !cur = -1 || cmp (subs.(i).Iter.key ()) (subs.(!cur).Iter.key ()) <= 0
        then cur := i
    done
  in
  let valid () = !cur >= 0 && subs.(!cur).Iter.valid () in
  {
    Iter.seek_to_first =
      (fun () ->
        Array.iter (fun it -> it.Iter.seek_to_first ()) subs;
        recompute ());
    seek =
      (fun target ->
        Array.iter (fun it -> it.Iter.seek target) subs;
        recompute ());
    valid;
    key = (fun () -> subs.(!cur).Iter.key ());
    value = (fun () -> subs.(!cur).Iter.value ());
    next =
      (fun () ->
        if valid () then begin
          subs.(!cur).Iter.next ();
          recompute ()
        end);
  }
