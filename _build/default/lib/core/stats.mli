(** Operation and maintenance counters (all atomic; cheap enough to keep on
    in production). *)

type t

type snapshot = {
  puts : int;
  gets : int;
  deletes : int;
  rmws : int;
  rmw_conflicts : int;
  snapshots_taken : int;
  scans : int;
  memtable_rotations : int;
  flushes : int;
  compactions : int;
  bytes_flushed : int;
  bytes_compacted : int;
  write_stalls : int;
}

val create : unit -> t
val incr_puts : t -> unit
val incr_gets : t -> unit
val incr_deletes : t -> unit
val incr_rmws : t -> unit
val incr_rmw_conflicts : t -> unit
val incr_snapshots : t -> unit
val incr_scans : t -> unit
val incr_rotations : t -> unit
val incr_flushes : t -> unit
val incr_compactions : t -> unit
val add_bytes_flushed : t -> int -> unit
val add_bytes_compacted : t -> int -> unit
val incr_write_stalls : t -> unit
val read : t -> snapshot
val pp : Format.formatter -> snapshot -> unit
