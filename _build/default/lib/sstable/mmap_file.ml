type map = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { mutable map : map option; len : int }

let open_ro path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let len = (Unix.fstat fd).Unix.st_size in
  let result =
    if len = 0 then { map = None; len = 0 }
    else
      let ga =
        Unix.map_file fd Bigarray.char Bigarray.c_layout false [| len |]
      in
      { map = Some (Bigarray.array1_of_genarray ga); len }
  in
  Unix.close fd;
  result

let length t = t.len

let read t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Mmap_file.read: out of bounds";
  if len = 0 then ""
  else
    match t.map with
    | None -> invalid_arg "Mmap_file.read: file closed or empty"
    | Some map ->
        let b = Bytes.create len in
        for i = 0 to len - 1 do
          Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get map (pos + i))
        done;
        Bytes.unsafe_to_string b

let close t = t.map <- None
