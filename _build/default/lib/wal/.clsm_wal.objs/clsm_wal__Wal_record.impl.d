lib/wal/wal_record.ml: Binary Buffer Clsm_util Crc32c String
