test/test_sim.ml: Alcotest Clsm_sim Clsm_sim_lsm Clsm_workload Engine Experiment List Printf Proc QCheck QCheck_alcotest Resource Sim_mutex Sim_shared_lock System
