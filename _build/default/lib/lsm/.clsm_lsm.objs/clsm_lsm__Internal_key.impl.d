lib/lsm/internal_key.ml: Binary Buffer Char Clsm_sstable Clsm_util Int String
