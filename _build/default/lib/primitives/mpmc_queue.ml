(* Michael & Scott two-pointer queue with a dummy head node. *)

type 'a node = { value : 'a option; next : 'a node option Atomic.t }

type 'a t = { head : 'a node Atomic.t; tail : 'a node Atomic.t }

let create () =
  let dummy = { value = None; next = Atomic.make None } in
  { head = Atomic.make dummy; tail = Atomic.make dummy }

let push t v =
  let node = { value = Some v; next = Atomic.make None } in
  let b = Backoff.create () in
  let rec loop () =
    let tail = Atomic.get t.tail in
    match Atomic.get tail.next with
    | None ->
        if Atomic.compare_and_set tail.next None (Some node) then
          (* Swing the tail; failure means another thread already helped. *)
          ignore (Atomic.compare_and_set t.tail tail node)
        else begin
          Backoff.once b;
          loop ()
        end
    | Some next ->
        (* Tail is lagging; help advance it and retry. *)
        ignore (Atomic.compare_and_set t.tail tail next);
        loop ()
  in
  loop ()

let pop t =
  let b = Backoff.create () in
  let rec loop () =
    let head = Atomic.get t.head in
    match Atomic.get head.next with
    | None -> None
    | Some next ->
        if Atomic.compare_and_set t.head head next then
          match next.value with
          | Some _ as v -> v
          | None -> assert false
        else begin
          Backoff.once b;
          loop ()
        end
  in
  loop ()

let is_empty t = Atomic.get (Atomic.get t.head).next = None

let length t =
  let rec count node acc =
    match Atomic.get node.next with
    | None -> acc
    | Some next -> count next (acc + 1)
  in
  count (Atomic.get t.head) 0
