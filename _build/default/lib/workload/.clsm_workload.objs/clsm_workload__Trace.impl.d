lib/workload/trace.ml: Char Clsm_util Driver Format Hashtbl Histogram List Option Printf Rng Store_ops String Unix Workload_spec
