examples/quickstart.ml: Array Clsm_core Db Filename Format List Options Printf Stats Sys Unix
