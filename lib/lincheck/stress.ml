type config = {
  seed : int;
  domains : int;
  ops_per_domain : int;
  key_space : int;
  dist : [ `Uniform | `Zipf | `Skewed_blocks | `Heavy_tail ];
  read_pct : int;
  put_pct : int;
  delete_pct : int;
  rmw_pct : int;
  scan_every : int;
  compact_every : int;
}

let default =
  {
    seed = 0;
    domains = 4;
    ops_per_domain = 300;
    key_space = 8;
    dist = `Uniform;
    read_pct = 30;
    put_pct = 25;
    delete_pct = 10;
    rmw_pct = 20;
    scan_every = 40;
    compact_every = 150;
  }

(* Key popularity comes from the benchmark harness's generators, so the
   checker exercises the same access shapes the paper's experiments use.
   Each worker owns its distribution instance (they carry per-shape
   state) seeded deterministically from (seed, domain). *)
let make_keygen cfg d =
  let module KD = Clsm_workload.Key_dist in
  let dist =
    match cfg.dist with
    | `Uniform -> KD.uniform cfg.key_space
    | `Zipf -> KD.zipf cfg.key_space
    | `Skewed_blocks -> KD.skewed_blocks cfg.key_space
    | `Heavy_tail -> KD.heavy_tail cfg.key_space
  in
  let wrng = Clsm_workload.Rng.create ((cfg.seed * 8191) + d) in
  fun () -> Printf.sprintf "k%02d" (KD.next_index dist wrng)

(* RMW flavors. The user function must be deterministic in the pre-image
   (it can be re-invoked after a conflict), so all randomness is drawn
   before the call. *)
let rmw_fn flavor fresh (pre : string option) =
  match (flavor, pre) with
  | 0, _ -> History.Set fresh (* unconditional overwrite *)
  | 1, None -> History.Set fresh (* toggle: install / remove *)
  | 1, Some _ -> History.Remove
  | 2, None -> History.Abort (* update only if present *)
  | 2, Some _ -> History.Set fresh
  | _, _ -> History.Abort (* pure read through the RMW path *)

let worker cfg ops rec_ gate d () =
  let dom = History.register rec_ in
  let iops = Target.instrument dom ops in
  let rng = Random.State.make [| cfg.seed; d; 0x11c4ec |] in
  let next_key = make_keygen cfg d in
  while not (Atomic.get gate) do
    Domain.cpu_relax ()
  done;
  for i = 1 to cfg.ops_per_domain do
    (match iops.Target.scan with
    | Some scan
      when cfg.scan_every > 0 && (i + (d * 7)) mod cfg.scan_every = 0 ->
        ignore (scan ())
    | _ -> ());
    (match iops.Target.compact with
    | Some compact
      when d = 0 && cfg.compact_every > 0 && i mod cfg.compact_every = 0 ->
        compact ()
    | _ -> ());
    let key = next_key () in
    let fresh = Printf.sprintf "d%d-%d" d i in
    let roll = Random.State.int rng 100 in
    if roll < cfg.read_pct then ignore (iops.Target.get key)
    else if roll < cfg.read_pct + cfg.put_pct then
      iops.Target.put ~key ~value:fresh
    else if roll < cfg.read_pct + cfg.put_pct + cfg.delete_pct then
      iops.Target.delete ~key
    else if roll < cfg.read_pct + cfg.put_pct + cfg.delete_pct + cfg.rmw_pct
    then begin
      match iops.Target.rmw with
      | Some rmw ->
          let flavor = Random.State.int rng 4 in
          ignore (rmw ~key (rmw_fn flavor fresh))
      | None -> iops.Target.put ~key ~value:fresh
    end
    else begin
      match iops.Target.put_if_absent with
      | Some pia -> ignore (pia ~key ~value:fresh)
      | None -> iops.Target.put ~key ~value:fresh
    end
  done

let run cfg ops =
  let rec_ = History.create () in
  let gate = Atomic.make false in
  let workers =
    List.init cfg.domains (fun d ->
        Domain.spawn (worker cfg ops rec_ gate d))
  in
  Atomic.set gate true;
  List.iter Domain.join workers;
  History.collect rec_
