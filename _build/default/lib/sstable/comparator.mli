(** Key ordering used by blocks, tables and the LSM layer.

    Like LevelDB's [Comparator] option: the disk format stores opaque byte
    strings; ordering is supplied by the caller so the LSM layer can order
    internal keys (user key ascending, timestamp ascending) without an
    order-preserving byte encoding. *)

type t = { name : string; compare : string -> string -> int }

val bytewise : t
(** Plain [String.compare]. *)
