(** Log-bucketed latency histogram (HdrHistogram-style, ~4 % bucket
    resolution). Recording is single-writer; use one histogram per worker
    domain and {!merge} afterwards. *)

type t

val create : unit -> t

val record : t -> float -> unit
(** Record one latency in seconds. *)

val count : t -> int
val merge : t list -> t

val percentile : t -> float -> float
(** [percentile t 90.0] in seconds; 0 when empty. *)

val mean : t -> float
val max_value : t -> float
