(** Lock-free multi-producer multi-consumer FIFO queue (Michael–Scott).

    Used as the asynchronous WAL logging queue (paper §4 harnesses libcds's
    non-blocking queue for the same purpose). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Enqueue at the tail. Non-blocking (lock-free). *)

val pop : 'a t -> 'a option
(** Dequeue from the head, or [None] if empty. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Approximate length (racy but consistent when quiescent). *)
