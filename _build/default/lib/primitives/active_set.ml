type t = { slots : int Atomic.t array }
type handle = int

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Active_set.create";
  { slots = Array.init capacity (fun _ -> Atomic.make 0) }

let add t ts =
  if ts <= 0 then invalid_arg "Active_set.add: timestamp must be positive";
  let n = Array.length t.slots in
  let start = (ts * 0x9e3779b1) land max_int mod n in
  let b = Backoff.create () in
  let rec probe i tried =
    if tried = n then begin
      Backoff.once b;
      probe start 0
    end
    else if Atomic.compare_and_set t.slots.(i) 0 ts then i
    else probe ((i + 1) mod n) (tried + 1)
  in
  probe start 0

let remove t handle =
  let old = Atomic.exchange t.slots.(handle) 0 in
  assert (old <> 0)

let remove_value t ts =
  let n = Array.length t.slots in
  let rec loop i =
    if i = n then false
    else if Atomic.get t.slots.(i) = ts && Atomic.compare_and_set t.slots.(i) ts 0
    then true
    else loop (i + 1)
  in
  loop 0

let find_min t =
  let best = ref 0 in
  Array.iter
    (fun slot ->
      let v = Atomic.get slot in
      if v <> 0 && (!best = 0 || v < !best) then best := v)
    t.slots;
  if !best = 0 then None else Some !best

let mem t ts =
  Array.exists (fun slot -> Atomic.get slot = ts) t.slots

let values t =
  Array.fold_left
    (fun acc slot ->
      let v = Atomic.get slot in
      if v <> 0 then v :: acc else acc)
    [] t.slots
  |> List.sort Int.compare

let cardinal t =
  Array.fold_left
    (fun acc slot -> if Atomic.get slot <> 0 then acc + 1 else acc)
    0 t.slots
