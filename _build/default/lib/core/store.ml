(* The cLSM store algorithm, generic over the in-memory component — the
   paper's decoupling claim made literal: Algorithms 1 and 2, the merge
   hooks, WAL, recovery and maintenance are written once against
   Memtable_intf.S; Algorithm 3's optimistic install is delegated to the
   component's locate/try_install pair. *)

module Make (M : Memtable_intf.S) : Store_sig.S = struct
  open Clsm_primitives
  open Clsm_lsm

  let src = Logs.Src.create "clsm.db" ~doc:"cLSM store"

  module Log = (val Logs.src_log src : Logs.LOG)

  (* A memory component: the skip-list plus the log that covers it. *)
  type memcomp = {
    mem : M.t;
    wal : Clsm_wal.Wal_writer.t option;
    wal_number : int;
  }

  type imm_slot = No_imm | Imm of memcomp

  type snapshot = {
    snap_ts : int;
    handle : Snapshot_registry.handle option; (* None for the ts=0 case *)
    released : bool Atomic.t;
  }

  type t = {
    opts : Options.t;
    lock : Shared_lock.t;
    time_counter : Monotonic_counter.t;
    active : Active_set.t;
    snap_time : Monotonic_counter.t;
    snapshots : Snapshot_registry.t;
    pm : memcomp Rcu_box.t;
    pimm : imm_slot Rcu_box.t;
    pd : Version.t Rcu_box.t;
    next_file : int Atomic.t;
    cache : Clsm_sstable.Block.t Clsm_sstable.Cache.t;
    stats : Stats.t;
    stop : bool Atomic.t;
    maintenance : Mutex.t; (* serializes rotation/flush/compaction steps *)
    compact_pointers : string array; (* per-level round-robin cursors *)
    mutable bg_domain : unit Domain.t option;
    mutable closed : bool;
    close_mutex : Mutex.t;
  }

  (* ---------- small helpers ---------- *)

  let alloc_file_number t () = Atomic.fetch_and_add t.next_file 1

  let current_pm t = Refcounted.value (Rcu_box.peek t.pm)
  let current_imm t = Refcounted.value (Rcu_box.peek t.pimm)
  let current_version t = Refcounted.value (Rcu_box.peek t.pd)

  (* The maintenance domain sleep-polls; "waking" it is a no-op kept at the
     call sites that mark where a dedicated wakeup would go. *)
  let wake_bg (_ : t) = ()

  (* Algorithm 2, getTS: acquire a fresh timestamp, retrying while it falls
     at or below a concurrently chosen snapshot time. *)
  let get_ts t =
    let rec loop () =
      let ts = Monotonic_counter.inc_and_get t.time_counter in
      let h = Active_set.add t.active ts in
      if ts <= Monotonic_counter.get t.snap_time then begin
        Active_set.remove t.active h;
        loop ()
      end
      else (ts, h)
    in
    loop ()

  (* ---------- manifest ---------- *)

  let manifest_of_state t =
    let v = current_version t in
    let l0 =
      List.map (fun f -> (0, (Refcounted.value f).Table_file.number)) v.Version.l0
    in
    let deeper =
      List.concat
        (List.mapi
           (fun i files ->
             List.map
               (fun f -> (i + 1, (Refcounted.value f).Table_file.number))
               files)
           (Array.to_list v.Version.levels))
    in
    {
      Manifest.next_file_number = Atomic.get t.next_file;
      last_ts = Monotonic_counter.get t.time_counter;
      wal_number = (current_pm t).wal_number;
      files = l0 @ deeper;
    }

  let save_manifest t = Manifest.save ~dir:t.opts.Options.dir (manifest_of_state t)

  (* ---------- reads (Algorithm 1: no blocking, Pm -> P'm -> Pd) ---------- *)

  let get_entry t ~user_key ~snap_ts =
    let from_pm =
      Rcu_box.with_ref t.pm (fun mc -> M.get mc.mem ~user_key ~snap_ts)
    in
    match from_pm with
    | Some (_, entry) -> Some entry
    | None -> (
        let from_imm =
          Rcu_box.with_ref t.pimm (fun slot ->
              match slot with
              | No_imm -> None
              | Imm mc -> M.get mc.mem ~user_key ~snap_ts)
        in
        match from_imm with
        | Some (_, entry) -> Some entry
        | None -> (
            match
              Rcu_box.with_ref t.pd (fun v -> Version.get v ~user_key ~snap_ts)
            with
            | Some (_, entry) -> Some entry
            | None -> None))

  let get t key =
    Stats.incr_gets t.stats;
    match get_entry t ~user_key:key ~snap_ts:Internal_key.max_ts with
    | Some (Entry.Value v) -> Some v
    | Some Entry.Tombstone | None -> None

  (* Forward declaration order: multi_get lives below get_snap (it reads a
     consistent snapshot); see further down. *)

  (* ---------- writes (Algorithm 1/2: shared lock + timestamp) ---------- *)

  (* Paper §5.3: when the memory component fills while the previous one is
     still being merged, client writes wait for the merge. Also stall on an
     L0 pile-up, like LevelDB/RocksDB. Checked outside the shared lock so a
     stalled writer cannot block the merge itself. *)
  let throttle_writes t =
    let stalled = ref false in
    let b = Backoff.create ~max_spins:4096 () in
    let rec wait () =
      if Atomic.get t.stop then ()
      else begin
        let mem_full =
          M.approximate_bytes (current_pm t).mem
          > 2 * t.opts.Options.memtable_bytes
        in
        let imm_busy = match current_imm t with Imm _ -> true | No_imm -> false in
        let l0_pile =
          Version.level_file_count (current_version t) 0
          >= t.opts.Options.lsm.Lsm_config.l0_stall_limit
        in
        if (mem_full && imm_busy) || l0_pile then begin
          if not !stalled then begin
            stalled := true;
            Stats.incr_write_stalls t.stats;
            wake_bg t
          end;
          Backoff.once b;
          wait ()
        end
      end
    in
    wait ()

  let write_entry t ~user_key entry =
    throttle_writes t;
    Shared_lock.lock_shared t.lock;
    let ts, h = get_ts t in
    let mc = current_pm t in
    M.add mc.mem ~user_key ~ts entry;
    (match mc.wal with
    | Some w ->
        Clsm_wal.Wal_writer.append w
          (Log_record.encode { Log_record.ts; user_key; entry })
    | None -> ());
    Active_set.remove t.active h;
    Shared_lock.unlock_shared t.lock;
    if M.approximate_bytes mc.mem > t.opts.Options.memtable_bytes then
      wake_bg t

  let put t ~key ~value =
    Stats.incr_puts t.stats;
    write_entry t ~user_key:key (Entry.Value value)

  (* Atomic batches keep LevelDB's blocking implementation (paper §4): the
     shared-exclusive lock is held in exclusive mode, so the batch is atomic
     with respect to every writer and every snapshot (getSnap also takes the
     lock); it is logged as one WAL record, so it is durable
     all-or-nothing. *)
  type batch_op = Batch_put of string * string | Batch_delete of string

  let write_batch t ops =
    if ops <> [] then begin
      throttle_writes t;
      Shared_lock.lock_exclusive t.lock;
      let mc = current_pm t in
      let records =
        List.map
          (fun op ->
            let user_key, entry =
              match op with
              | Batch_put (key, value) ->
                  Stats.incr_puts t.stats;
                  (key, Entry.Value value)
              | Batch_delete key ->
                  Stats.incr_deletes t.stats;
                  (key, Entry.Tombstone)
            in
            (* No concurrent getSnap can run (it needs the shared lock), so
               plain counter increments are safe here without the Active
               set. *)
            let ts = Monotonic_counter.inc_and_get t.time_counter in
            M.add mc.mem ~user_key ~ts entry;
            { Log_record.ts; user_key; entry })
          ops
      in
      (match mc.wal with
      | Some w -> Clsm_wal.Wal_writer.append w (Log_record.encode_batch records)
      | None -> ());
      Shared_lock.unlock_exclusive t.lock;
      if M.approximate_bytes mc.mem > t.opts.Options.memtable_bytes then
        wake_bg t
    end

  let delete t ~key =
    Stats.incr_deletes t.stats;
    write_entry t ~user_key:key Entry.Tombstone

  (* ---------- read-modify-write (Algorithm 3) ---------- *)

  type rmw_decision = Set of string | Remove | Abort

  let rmw t ~key f =
    Stats.incr_rmws t.stats;
    throttle_writes t;
    Shared_lock.lock_shared t.lock;
    let pm = current_pm t in
    let rec attempt () =
      (* Line 4: newest version across Pm, P'm, Pd. Under the shared lock the
         component pointers are stable (swaps require exclusive mode). *)
      let latest =
        match M.get pm.mem ~user_key:key ~snap_ts:Internal_key.max_ts with
        | Some _ as hit -> hit
        | None -> (
            match current_imm t with
            | Imm mc -> (
                match
                  M.get mc.mem ~user_key:key ~snap_ts:Internal_key.max_ts
                with
                | Some _ as hit -> hit
                | None ->
                    Version.get (current_version t) ~user_key:key
                      ~snap_ts:Internal_key.max_ts)
            | No_imm ->
                Version.get (current_version t) ~user_key:key
                  ~snap_ts:Internal_key.max_ts)
      in
      let seen_ts = match latest with Some (ts, _) -> ts | None -> 0 in
      let pre_image =
        match latest with Some (_, Entry.Value v) -> Some v | _ -> None
      in
      match f pre_image with
      | Abort -> pre_image
      | decision -> (
          let entry =
            match decision with
            | Set v -> Entry.Value v
            | Remove -> Entry.Tombstone
            | Abort -> assert false
          in
          (* Lines 5-6: locate the insertion point for (k, ∞); a predecessor
             version newer than what we read is a conflict. *)
          let prev_ts, loc = M.locate_rmw pm.mem ~user_key:key in
          match prev_ts with
          | Some p when p > seen_ts ->
              Stats.incr_rmw_conflicts t.stats;
              attempt ()
          | _ ->
              (* Lines 9-12: fresh timestamp, then publish with a CAS. *)
              let ts, h = get_ts t in
              if M.try_install pm.mem loc ~user_key:key ~ts entry then begin
                (match pm.wal with
                | Some w ->
                    Clsm_wal.Wal_writer.append w
                      (Log_record.encode { Log_record.ts; user_key = key; entry })
                | None -> ());
                Active_set.remove t.active h;
                pre_image
              end
              else begin
                Active_set.remove t.active h;
                Stats.incr_rmw_conflicts t.stats;
                attempt ()
              end)
    in
    let result = attempt () in
    Shared_lock.unlock_shared t.lock;
    (if M.approximate_bytes pm.mem > t.opts.Options.memtable_bytes then
       wake_bg t);
    result

  let put_if_absent t ~key ~value =
    (* [f] can be re-invoked after a conflict; only the decision of the final
       (successful) invocation stands, so the flag must be overwritten on
       every call rather than latched. *)
    let installed = ref false in
    ignore
      (rmw t ~key (function
        | Some _ ->
            installed := false;
            Abort
        | None ->
            installed := true;
            Set value));
    !installed

  (* ---------- snapshots (Algorithm 2) ---------- *)

  let get_snap ?ttl t =
    Stats.incr_snapshots t.stats;
    Shared_lock.lock_shared t.lock;
    let tsb =
      if t.opts.Options.unsafe_naive_snapshots then
        (* Ablation: the strawman rejected in §3.2.1 (Figures 3-4) — read
           timeCounter directly; concurrent puts can make scans
           unserializable. *)
        Monotonic_counter.get t.time_counter
      else begin
        let ts = Monotonic_counter.get t.time_counter in
        let ts =
          if t.opts.Options.linearizable_snapshots then ts
          else
            (* Serializable default: step below every in-flight put (lines
               10-11); the scan may read slightly "in the past". *)
            match Active_set.find_min t.active with
            | Some tsa -> min ts (tsa - 1)
            | None -> ts
        in
        ignore (Monotonic_counter.advance_to t.snap_time ts);
        (* Line 13: wait out puts whose timestamps are below snapTime; each
           iteration implies progress of some put or getSnap. *)
        let b = Backoff.create () in
        let rec wait () =
          match Active_set.find_min t.active with
          | Some m when m < Monotonic_counter.get t.snap_time ->
              Backoff.once b;
              wait ()
          | Some _ | None -> ()
        in
        wait ();
        Monotonic_counter.get t.snap_time
      end
    in
    let handle =
      if tsb > 0 then
        Some
          (Snapshot_registry.install t.snapshots ?ttl
             ~now:(Unix.gettimeofday ()) tsb)
      else None
    in
    Shared_lock.unlock_shared t.lock;
    { snap_ts = tsb; handle; released = Atomic.make false }

  let snapshot_ts s = s.snap_ts

  let release_snapshot t s =
    if not (Atomic.exchange s.released true) then
      match s.handle with
      | Some h -> Snapshot_registry.remove t.snapshots h
      | None -> ()

  let get_at t s key =
    Stats.incr_gets t.stats;
    if Atomic.get s.released then invalid_arg "Db.get_at: released snapshot";
    match get_entry t ~user_key:key ~snap_ts:s.snap_ts with
    | Some (Entry.Value v) -> Some v
    | Some Entry.Tombstone | None -> None

  (* Consistent multi-key read: all keys observed at one timestamp. *)
  let multi_get t keys =
    let s = get_snap t in
    let result = List.map (fun k -> (k, get_at t s k)) keys in
    release_snapshot t s;
    result

  (* ---------- iterators / scans ---------- *)

  type iterator = {
    snap : snapshot;
    own_snapshot : bool;
    merged : Iter.t;
    release_refs : unit -> unit;
    db : t;
    mutable cur : (string * string) option;
    mutable it_closed : bool;
  }

  (* Consume the group of versions of the user key at the merge cursor and
     return its visible binding under the snapshot, advancing past the
     group. *)
  let rec next_visible merged snap_ts =
    if not (merged.Iter.valid ()) then None
    else begin
      let uk = Internal_key.user_key_of (merged.Iter.key ()) in
      let best = ref None in
      let rec consume () =
        if merged.Iter.valid () then begin
          let ik = merged.Iter.key () in
          if String.equal (Internal_key.user_key_of ik) uk then begin
            if Internal_key.ts_of ik <= snap_ts then
              best := Some (merged.Iter.value ());
            merged.Iter.next ();
            consume ()
          end
        end
      in
      consume ();
      match !best with
      | Some enc -> (
          match Entry.decode enc with
          | Entry.Value v -> Some (uk, v)
          | Entry.Tombstone -> next_visible merged snap_ts)
      | None -> next_visible merged snap_ts
    end

  let iterator ?snapshot t =
    Stats.incr_scans t.stats;
    let snap, own_snapshot =
      match snapshot with Some s -> (s, false) | None -> (get_snap t, true)
    in
    (* Pin all three components for the iterator's lifetime. *)
    let pm_cell = Rcu_box.acquire t.pm in
    let imm_cell = Rcu_box.acquire t.pimm in
    let pd_cell = Rcu_box.acquire t.pd in
    let sources =
      M.iter (Refcounted.value pm_cell).mem
      ::
      (match Refcounted.value imm_cell with
      | Imm mc -> [ M.iter mc.mem ]
      | No_imm -> [])
      @ Version.iters (Refcounted.value pd_cell)
    in
    let merged = Merge_iter.merge ~cmp:Internal_key.compare_encoded sources in
    let release_refs () =
      Refcounted.decr pm_cell;
      Refcounted.decr imm_cell;
      Refcounted.decr pd_cell
    in
    {
      snap;
      own_snapshot;
      merged;
      release_refs;
      db = t;
      cur = None;
      it_closed = false;
    }

  let iter_seek_first it =
    it.merged.Iter.seek_to_first ();
    it.cur <- next_visible it.merged it.snap.snap_ts

  let iter_seek it target =
    it.merged.Iter.seek (Internal_key.make target 0);
    it.cur <- next_visible it.merged it.snap.snap_ts

  let iter_valid it = it.cur <> None

  let iter_key it =
    match it.cur with
    | Some (k, _) -> k
    | None -> invalid_arg "Db.iter_key: invalid iterator"

  let iter_value it =
    match it.cur with
    | Some (_, v) -> v
    | None -> invalid_arg "Db.iter_value: invalid iterator"

  let iter_next it =
    if it.cur <> None then
      it.cur <- next_visible it.merged it.snap.snap_ts

  let iter_close it =
    if not it.it_closed then begin
      it.it_closed <- true;
      it.cur <- None;
      it.release_refs ();
      if it.own_snapshot then release_snapshot it.db it.snap
    end

  let range ?snapshot ?start ?stop ?(limit = max_int) t =
    let it = iterator ?snapshot t in
    (match start with
    | Some s -> iter_seek it s
    | None -> iter_seek_first it);
    let rec collect n acc =
      if n >= limit || not (iter_valid it) then List.rev acc
      else
        let k = iter_key it in
        match stop with
        | Some e when k >= e -> List.rev acc
        | Some _ | None ->
            let v = iter_value it in
            iter_next it;
            collect (n + 1) ((k, v) :: acc)
    in
    let result = collect 0 [] in
    iter_close it;
    result

  let fold ?snapshot f t acc =
    let it = iterator ?snapshot t in
    iter_seek_first it;
    let rec go acc =
      if iter_valid it then begin
        let k = iter_key it and v = iter_value it in
        iter_next it;
        go (f k v acc)
      end
      else acc
    in
    let result = go acc in
    iter_close it;
    result

  (* ---------- merge hooks and maintenance ---------- *)

  (* beforeMerge: freeze Cm as C'm and open a fresh Cm (Algorithm 1 lines
     8-12). Returns false when a previous immutable component is still being
     merged. Caller holds [maintenance]. *)
  let rotate t =
    match current_imm t with
    | Imm _ -> false
    | No_imm ->
        if M.is_empty (current_pm t).mem then false
        else begin
          let wal_number = alloc_file_number t () in
          let wal =
            if t.opts.Options.wal_enabled then
              Some
                (Clsm_wal.Wal_writer.create
                   ~mode:
                     (if t.opts.Options.sync_wal then Clsm_wal.Wal_writer.Sync
                      else Clsm_wal.Wal_writer.Async)
                   (Table_file.wal_path ~dir:t.opts.Options.dir wal_number))
            else None
          in
          let fresh = { mem = M.create (); wal; wal_number } in
          Shared_lock.lock_exclusive t.lock;
          (* P'm <- Pm, then Pm <- new: readers traversing Pm then P'm may see
             the old component twice but can never miss it. *)
          let old_pm_cell = Rcu_box.peek t.pm in
          let imm_cell =
            Refcounted.create (Imm (Refcounted.value old_pm_cell))
          in
          let old_imm_cell = Rcu_box.swap t.pimm imm_cell in
          let old_pm_cell' = Rcu_box.swap t.pm (Refcounted.create fresh) in
          Shared_lock.unlock_exclusive t.lock;
          assert (old_pm_cell == old_pm_cell');
          Refcounted.retire old_imm_cell;
          Refcounted.retire old_pm_cell';
          Stats.incr_rotations t.stats;
          true
        end

  (* Merge C'm into the disk component, then afterMerge: install the new
     version and clear P'm (Algorithm 1 lines 13-17). Caller holds
     [maintenance]. *)
  let flush_imm t =
    match current_imm t with
    | No_imm -> false
    | Imm mc ->
        let snapshots =
          Snapshot_registry.live_timestamps t.snapshots ~now:(Unix.gettimeofday ())
        in
        let bytes = M.approximate_bytes mc.mem in
        let outputs =
          Compaction.write_sorted_run ~cfg:t.opts.Options.lsm
            ~dir:t.opts.Options.dir ~cache:t.cache
            ~alloc_number:(alloc_file_number t) ~snapshots
            ~drop_tombstones:false (M.iter mc.mem)
        in
        Shared_lock.lock_exclusive t.lock;
        let cur = current_version t in
        let next =
          Version.create
            ~l0:(outputs @ cur.Version.l0)
            ~levels:cur.Version.levels
        in
        let old_pd = Rcu_box.swap t.pd (Refcounted.create ~release:Version.release next) in
        let old_imm = Rcu_box.swap t.pimm (Refcounted.create No_imm) in
        Shared_lock.unlock_exclusive t.lock;
        Refcounted.retire old_pd;
        Refcounted.retire old_imm;
        List.iter Refcounted.retire outputs;
        Stats.incr_flushes t.stats;
        Stats.add_bytes_flushed t.stats bytes;
        (* Durability order: the manifest that stops referencing the old WAL
           must land before the WAL disappears. *)
        save_manifest t;
        (match mc.wal with
        | Some w ->
            Clsm_wal.Wal_writer.close w;
            (try Sys.remove (Clsm_wal.Wal_writer.path w) with Sys_error _ -> ())
        | None -> ());
        Log.debug (fun m ->
            m "flushed %d bytes into %d L0 file(s)" bytes (List.length outputs));
        true

  (* One background level compaction, if any level is over budget. Caller
     holds [maintenance]. *)
  let compact_level_once t =
    let pd_cell = Rcu_box.acquire t.pd in
    let v = Refcounted.value pd_cell in
    let result =
      match
        Compaction.pick ~cfg:t.opts.Options.lsm ~level_pointers:t.compact_pointers
          v
      with
      | None -> false
      | Some task ->
          let snapshots =
          Snapshot_registry.live_timestamps t.snapshots ~now:(Unix.gettimeofday ())
        in
          let outputs =
            Compaction.run ~cfg:t.opts.Options.lsm ~dir:t.opts.Options.dir
              ~cache:t.cache ~alloc_number:(alloc_file_number t) ~snapshots task
          in
          Shared_lock.lock_exclusive t.lock;
          let cur = current_version t in
          let next = Compaction.apply cur task ~outputs in
          let old_pd =
            Rcu_box.swap t.pd (Refcounted.create ~release:Version.release next)
          in
          Shared_lock.unlock_exclusive t.lock;
          let bytes =
            List.fold_left
              (fun a f -> a + (Refcounted.value f).Table_file.size)
              0
              (task.Compaction.inputs_lo @ task.Compaction.inputs_hi)
          in
          List.iter
            (fun f -> Table_file.mark_obsolete (Refcounted.value f))
            (task.Compaction.inputs_lo @ task.Compaction.inputs_hi);
          (if task.Compaction.src_level >= 1 then
             match Version.files_range task.Compaction.inputs_lo with
             | Some (_, largest) ->
                 t.compact_pointers.(task.Compaction.src_level - 1) <- largest
             | None -> ());
          Refcounted.retire old_pd;
          List.iter Refcounted.retire outputs;
          Stats.incr_compactions t.stats;
          Stats.add_bytes_compacted t.stats bytes;
          save_manifest t;
          Log.debug (fun m ->
              m "compacted level %d (%d bytes) into %d file(s)"
                task.Compaction.src_level bytes (List.length outputs));
          true
    in
    Refcounted.decr pd_cell;
    result

  let maintenance_step t =
    Mutex.lock t.maintenance;
    let worked =
      match flush_imm t with
      | true -> true
      | false ->
          let need_rotate =
            M.approximate_bytes (current_pm t).mem
            > t.opts.Options.memtable_bytes
          in
          if need_rotate && rotate t then begin
            ignore (flush_imm t);
            true
          end
          else compact_level_once t
    in
    Mutex.unlock t.maintenance;
    worked

  let bg_loop t =
    (* OCaml's Condition has no timed wait; a short sleep-poll keeps the
       maintenance service responsive (a handful of atomic loads per tick)
       without missed-wakeup hazards. *)
    while not (Atomic.get t.stop) do
      let worked = maintenance_step t in
      if not worked then Unix.sleepf 0.002
    done

  let compact_now t =
    Mutex.lock t.maintenance;
    ignore (flush_imm t);
    ignore (rotate t);
    ignore (flush_imm t);
    while compact_level_once t do
      ()
    done;
    Mutex.unlock t.maintenance

  (* ---------- open / recovery / close ---------- *)

  let list_files dir =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match String.split_on_char '.' name with
           | [ num; ext ] -> (
               match int_of_string_opt num with
               | Some n when ext = "sst" -> Some (`Table (n, name))
               | Some n when ext = "log" -> Some (`Wal (n, name))
               | _ -> None)
           | _ -> None)

  let open_store (opts : Options.t) =
    if not (Sys.file_exists opts.dir) then Unix.mkdir opts.dir 0o755;
    let cache =
      Clsm_sstable.Cache.create ~capacity:opts.cache_bytes
        ~weight:Clsm_sstable.Block.size_bytes ()
    in
    let manifest = Manifest.load ~dir:opts.dir in
    let num_levels = opts.lsm.Lsm_config.num_levels in
    let disk_files = list_files opts.dir in
    let version, next_file, last_ts, min_wal =
      match manifest with
      | None -> (Version.empty ~num_levels, 1, 0, 0)
      | Some m ->
          (* Drop orphans: tables not in the manifest (half-finished flush or
             compaction) and logs below the manifest's replay floor. *)
          let live = List.map snd m.Manifest.files in
          List.iter
            (fun f ->
              match f with
              | `Table (n, name) when not (List.mem n live) ->
                  Sys.remove (Filename.concat opts.dir name)
              | `Wal (n, name) when n < m.Manifest.wal_number ->
                  Sys.remove (Filename.concat opts.dir name)
              | `Table _ | `Wal _ -> ())
            disk_files;
          let l0 = ref [] and levels = Array.make (num_levels - 1) [] in
          List.iter
            (fun (level, number) ->
              let tf = Table_file.open_number ~cache ~dir:opts.dir number in
              let cell = Refcounted.create ~release:Table_file.release tf in
              if level = 0 then l0 := cell :: !l0
              else levels.(level - 1) <- cell :: levels.(level - 1))
            m.Manifest.files;
          let sort_level files =
            List.sort
              (fun a b ->
                Internal_key.compare_encoded
                  (Refcounted.value a).Table_file.smallest
                  (Refcounted.value b).Table_file.smallest)
              files
          in
          Array.iteri (fun i files -> levels.(i) <- sort_level files) levels;
          (* l0 was reversed by consing; manifest order is newest first *)
          let v = Version.create ~l0:(List.rev !l0) ~levels in
          (* Version.create took refs; drop the creation refs *)
          List.iter Refcounted.retire !l0;
          Array.iter (List.iter Refcounted.retire) levels;
          (v, m.Manifest.next_file_number, m.Manifest.last_ts, m.Manifest.wal_number)
    in
    (* Replay surviving logs oldest-first; timestamps restore the global
       write order regardless of on-disk record order (paper §4). *)
    let mem = M.create () in
    let max_ts = ref last_ts in
    let wals =
      List.filter_map
        (function `Wal (n, name) when n >= min_wal -> Some (n, name) | _ -> None)
        (list_files opts.dir)
      |> List.sort compare
    in
    List.iter
      (fun (_, name) ->
        let records, _outcome =
          Clsm_wal.Wal_reader.read_records (Filename.concat opts.dir name)
        in
        List.iter
          (fun payload ->
            match Log_record.decode_all payload with
            | records ->
                List.iter
                  (fun { Log_record.ts; user_key; entry } ->
                    M.add mem ~user_key ~ts entry;
                    if ts > !max_ts then max_ts := ts)
                  records
            | exception (Clsm_util.Varint.Corrupt _ | Invalid_argument _) -> ())
          records)
      wals;
    let next_file =
      List.fold_left
        (fun acc f -> match f with `Table (n, _) | `Wal (n, _) -> max acc (n + 1))
        (max 1 next_file) disk_files
    in
    let next_file_atomic = Atomic.make next_file in
    let wal_number = Atomic.fetch_and_add next_file_atomic 1 in
    let wal =
      if opts.wal_enabled then
        Some
          (Clsm_wal.Wal_writer.create
             ~mode:(if opts.sync_wal then Clsm_wal.Wal_writer.Sync else Clsm_wal.Wal_writer.Async)
             (Table_file.wal_path ~dir:opts.dir wal_number))
      else None
    in
    (* Re-log replayed records into the fresh WAL so older logs can be
       ignored on the next recovery. *)
    (match wal with
    | Some w ->
        M.fold_entries
          (fun user_key ts entry () ->
            Clsm_wal.Wal_writer.append w
              (Log_record.encode { Log_record.ts; user_key; entry }))
          mem ();
        Clsm_wal.Wal_writer.flush w
    | None -> ());
    let t =
      {
        opts;
        lock = Shared_lock.create ();
        time_counter = Monotonic_counter.create !max_ts;
        active = Active_set.create ~capacity:opts.active_set_capacity ();
        snap_time = Monotonic_counter.create 0;
        snapshots = Snapshot_registry.create ();
        pm = Rcu_box.create (Refcounted.create { mem; wal; wal_number });
        pimm = Rcu_box.create (Refcounted.create No_imm);
        pd = Rcu_box.create (Refcounted.create ~release:Version.release version);
        next_file = next_file_atomic;
        cache;
        stats = Stats.create ();
        stop = Atomic.make false;
        maintenance = Mutex.create ();
        compact_pointers = Array.make (num_levels - 1) "";
        bg_domain = None;
        closed = false;
        close_mutex = Mutex.create ();
      }
    in
    save_manifest t;
    (* Older logs are now redundant: their live records were re-logged. *)
    List.iter
      (fun (n, name) ->
        if n < wal_number then
          try Sys.remove (Filename.concat opts.dir name) with Sys_error _ -> ())
      wals;
    t.bg_domain <- Some (Domain.spawn (fun () -> bg_loop t));
    t

  (* LevelDB's RepairDB: reconstruct a usable manifest from whatever table
     files survive in the directory. Every table is installed at level 0
     (overlap is legal there); higher timestamps win on reads, so no data is
     mis-ordered. WAL files are retained for replay by the next open. *)
  let repair ~dir =
    let files = list_files dir in
    let tables =
      List.filter_map (function `Table (n, _) -> Some n | `Wal _ -> None) files
      |> List.sort compare
    in
    let wals =
      List.filter_map (function `Wal (n, _) -> Some n | `Table _ -> None) files
    in
    (* Probe each table; drop unreadable ones (renamed aside, not deleted).
       The highest timestamp seen anywhere restores the counter so new writes
       stay newer than recovered data. *)
    let max_ts = ref 0 in
    let usable =
      List.filter
        (fun n ->
          let aside () =
            try
              Sys.rename
                (Table_file.table_path ~dir n)
                (Table_file.table_path ~dir n ^ ".damaged")
            with Sys_error _ -> ()
          in
          match Table_file.open_number ~dir n with
          | tf -> (
              match Clsm_sstable.Table.verify tf.Table_file.table with
              | Ok _ ->
                  Clsm_sstable.Table.fold
                    (fun ik _ () ->
                      let ts = Internal_key.ts_of ik in
                      if ts > !max_ts then max_ts := ts)
                    tf.Table_file.table ();
                  Clsm_sstable.Table.close tf.Table_file.table;
                  true
              | Error _ ->
                  Clsm_sstable.Table.close tf.Table_file.table;
                  aside ();
                  false)
          | exception _ ->
              aside ();
              false)
        tables
    in
    let max_number = List.fold_left max 0 (usable @ wals) in
    Manifest.save ~dir
      {
        Manifest.next_file_number = max_number + 1;
        last_ts = !max_ts;
        wal_number = List.fold_left min max_int (max_int :: wals);
        (* newest tables first, like fresh flushes *)
        files = List.map (fun n -> (0, n)) (List.rev usable);
      }

  let flush_wal t =
    match (current_pm t).wal with
    | Some w -> Clsm_wal.Wal_writer.flush w
    | None -> ()

  (* Testing hook: die without flushing the WAL queue or saving the
     manifest — what a crash leaves on disk. The value must not be used
     afterwards (a fresh open_store on the directory performs recovery). *)
  let simulate_crash t =
    Mutex.lock t.close_mutex;
    if not t.closed then begin
      t.closed <- true;
      Atomic.set t.stop true;
      (match t.bg_domain with Some d -> Domain.join d | None -> ());
      match (current_pm t).wal with
      | Some w -> Clsm_wal.Wal_writer.abandon w
      | None -> ()
    end;
    Mutex.unlock t.close_mutex

  let close t =
    Mutex.lock t.close_mutex;
    if not t.closed then begin
      t.closed <- true;
      Atomic.set t.stop true;
      wake_bg t;
      (match t.bg_domain with Some d -> Domain.join d | None -> ());
      flush_wal t;
      save_manifest t;
      (* Release the component references we own. *)
      let pm_cell = Rcu_box.peek t.pm in
      (match (Refcounted.value pm_cell).wal with
      | Some w -> Clsm_wal.Wal_writer.close w
      | None -> ());
      Refcounted.retire pm_cell;
      Refcounted.retire (Rcu_box.peek t.pimm);
      Refcounted.retire (Rcu_box.peek t.pd)
    end;
    Mutex.unlock t.close_mutex

  (* Offline-style health check runnable on a live store: validates every
     table file and the level invariants of the current version. *)
  let verify_integrity t =
    Rcu_box.with_ref t.pd Version.validate

  let stats t = Stats.read t.stats
  let options t = t.opts

  let level_file_counts t =
    let v = current_version t in
    List.length v.Version.l0
    :: List.map List.length (Array.to_list v.Version.levels)

  let memtable_bytes t = M.approximate_bytes (current_pm t).mem
  let cache_stats t = Clsm_sstable.Cache.stats t.cache

end
