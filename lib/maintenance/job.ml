type t =
  | Flush
  | Repair
  | Compact of { src_level : int; target_level : int }
  | Scrub
  | In_shard of { shard : int; job : t }

let rec priority = function
  | Flush -> 0
  (* Repair restores write availability (Degraded) or full redundancy
     (quarantine): behind the flush that frees WAL space, ahead of any
     compaction. *)
  | Repair -> 1
  | Compact { src_level; _ } -> src_level + 2
  (* Scrub is pure background hygiene — it yields to everything. *)
  | Scrub -> 1000
  (* Routing is transparent to urgency: a shard's flush still beats any
     compaction anywhere. *)
  | In_shard { job; _ } -> priority job

let compare a b = Int.compare (priority a) (priority b)

let rec levels = function
  | Flush | Repair | Scrub -> None
  | Compact { src_level; target_level } -> Some (src_level, target_level)
  | In_shard { job; _ } -> levels job

let rec pp ppf = function
  | Flush -> Format.fprintf ppf "flush"
  | Repair -> Format.fprintf ppf "repair"
  | Compact { src_level; target_level } ->
      Format.fprintf ppf "compact(L%d->L%d)" src_level target_level
  | Scrub -> Format.fprintf ppf "scrub"
  | In_shard { shard; job } -> Format.fprintf ppf "shard%d:%a" shard pp job
