examples/vector_clocks.mli:
