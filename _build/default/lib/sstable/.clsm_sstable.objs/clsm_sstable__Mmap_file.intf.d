lib/sstable/mmap_file.mli:
