lib/core/db.ml: Memtable Store
