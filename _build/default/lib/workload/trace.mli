(** Operation traces: the paper's production evaluation (§5.2) replays
    "logs captured in a production key-value store". This module defines a
    portable trace file format, a synthesizer that writes traces with the
    published production statistics, and a replayer.

    Format: one operation per line —
    {v
    G <key>               get
    P <key> <value_len>   put
    D <key>               delete
    S <key> <scan_len>    snapshot range scan
    M <key> <value_len>   read-modify-write (put-if-absent)
    v}
    Values are regenerated deterministically from the key at replay time,
    so traces stay compact (keys and shapes, not payloads). *)

type op =
  | Get of string
  | Put of string * int
  | Delete of string
  | Scan of string * int
  | Rmw of string * int

val op_to_line : op -> string
val op_of_line : string -> op option
(** [None] on blank/comment lines; raises [Failure] on malformed lines. *)

val synthesize :
  ?seed:int -> spec:Workload_spec.t -> count:int -> string -> unit
(** Write a [count]-operation trace drawn from [spec] to the given path. *)

val load : string -> op list

type stats = {
  total : int;
  reads : int;
  writes : int;
  deletes : int;
  scans : int;
  rmws : int;
  distinct_keys : int;
  top_decile_share : float;
      (** fraction of key references going to the most popular 10 % of
          distinct keys — the §5.2 locality statistic *)
}

val stats_of : op list -> stats
val pp_stats : Format.formatter -> stats -> unit

val replay :
  ?value_seed:int -> Store_ops.t -> op list -> Driver.result
(** Single-threaded replay in trace order (a trace is one partition's
    request log), measuring latency per operation. *)
