test/test_wal.ml: Alcotest Buffer Bytes Clsm_wal Domain Filename Gen List Printf QCheck QCheck_alcotest String Unix Wal_reader Wal_record Wal_writer
