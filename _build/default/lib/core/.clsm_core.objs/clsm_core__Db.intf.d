lib/core/db.mli: Store_sig
