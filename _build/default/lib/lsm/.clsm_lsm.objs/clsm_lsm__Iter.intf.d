lib/lsm/iter.mli: Clsm_sstable
