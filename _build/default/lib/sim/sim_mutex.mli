(** FIFO mutex in virtual time — the model of LevelDB's global mutex and
    of lock stripes. Tracks contention statistics (total wait time,
    acquisitions) so experiments can report where time went. *)

type t

val create : Engine.t -> t
val lock : t -> unit Proc.t
val unlock : t -> unit
val acquisitions : t -> int
val total_wait : t -> float
(** Summed virtual seconds processes spent queued. *)

val waiting : t -> int
(** Processes currently queued (for convoy-cost models). *)
