(** Uniform operation surface over everything the lincheck harness can
    drive, plus the recorder hook that instruments it.

    A target is a record of closures; optional fields degrade gracefully
    (the stress driver substitutes a put when [rmw] is unsupported, and
    skips scans when [scan] is absent). {!instrument} wraps a target so
    every call logs an invocation/response event into the per-domain
    buffer — build one instrumented copy per worker domain. *)

type ops = {
  name : string;
  get : string -> string option;
  put : key:string -> value:string -> unit;
  delete : key:string -> unit;
  rmw :
    (key:string -> (string option -> History.decision) -> string option)
    option;
  put_if_absent : (key:string -> value:string -> bool) option;
  scan : (unit -> int option * (string * string) list) option;
      (** full-range scan: snapshot timestamp (when exposed) + bindings *)
  compact : (unit -> unit) option;
      (** synchronous flush + compaction, for the chaos schedule *)
}

module Of_store (S : Clsm_core.Store_sig.S) : sig
  val ops : ?name:string -> S.t -> ops
  (** Any [Store_sig.S] implementation — {!Clsm_core.Db} (the cLSM
      skip-list store) or {!Clsm_core.Cow_store}. Scans read through a
      fresh snapshot and report its timestamp. *)
end

val of_memtable : unit -> ops
(** A bare {!Clsm_core.Memtable} (the lock-free skip-list with versioned
    keys) driven directly: puts draw timestamps from a private counter,
    RMW runs the Algorithm-3 locate/conflict-check/CAS-install loop with
    no store around it. No scans (memtable iteration is only weakly
    consistent, by design). *)

val of_striped : Clsm_baselines.Striped_rmw.t -> ops
(** The Figure 9 lock-striping baseline — a known-good reference. *)

val of_broken : Clsm_baselines.Broken_store.t -> ops
(** The deliberately racy store — the checker must flag it. *)

val instrument : History.dom -> ops -> ops
(** Record every operation through [dom]. RMW records the pre-image
    returned by the successful attempt and the decision of the final
    invocation of the user function. *)
