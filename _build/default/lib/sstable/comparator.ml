type t = { name : string; compare : string -> string -> int }

let bytewise = { name = "bytewise"; compare = String.compare }
