lib/core/cow_memtable.mli: Memtable_intf
