lib/primitives/rcu_box.mli: Refcounted
