test/test_baselines.ml: Alcotest Clsm_baselines Clsm_core Clsm_lsm Clsm_workload Domain Filename List Printf Single_writer_store String Striped_rmw Unix
