(* The shared logical-time domain of the store, extracted from the store
   core so several cLSM instances (range shards) can serve one timestamp
   space: the paper's [timeCounter], the [Active] set of in-flight write
   timestamps, the blind-writer subset [put_active], the monotone
   [snapTime] fence, and the registry of live snapshot timestamps that
   compaction GC consults.

   A clock owned by a single store behaves exactly as the fields did when
   they lived inside [Db]. A clock shared by several stores gives their
   union one serializable history: a snapshot timestamp fenced here is
   valid against every store drawing timestamps from the same clock, which
   is what makes consistent cross-shard scans a single [getSnap]. *)

open Clsm_primitives

type t = {
  time_counter : Monotonic_counter.t;
  active : Active_set.t;
  put_active : Active_set.t;
      (* blind writers only (put/delete), a subset of [active]: what an
         RMW's in-flight fence drains — older RMWs self-detect via their
         conflict check, so waiting on them would serialize all RMWs *)
  snap_time : Monotonic_counter.t;
  snapshots : Snapshot_registry.t;
}

let create ?(active_set_capacity = 4096) () =
  {
    time_counter = Monotonic_counter.create 0;
    active = Active_set.create ~capacity:active_set_capacity ();
    put_active = Active_set.create ~capacity:active_set_capacity ();
    snap_time = Monotonic_counter.create 0;
    snapshots = Snapshot_registry.create ();
  }

let now t = Monotonic_counter.get t.time_counter

(* Recovery found persisted timestamps up to [ts]: new writes must draw
   strictly newer ones. CAS-max, so shards recovering concurrently (or in
   any order) converge on the global maximum. *)
let observe_recovered_ts t ts =
  ignore (Monotonic_counter.advance_to t.time_counter ts)

(* Algorithm 2, getTS: acquire a fresh timestamp, retrying while it falls
   at or below a concurrently chosen snapshot time. *)
let get_ts t =
  let rec loop () =
    let ts = Monotonic_counter.inc_and_get t.time_counter in
    let h = Active_set.add t.active ts in
    if ts <= Monotonic_counter.get t.snap_time then begin
      Active_set.remove t.active h;
      loop ()
    end
    else (ts, h)
  in
  loop ()

(* Blind writers (put/delete) additionally register in [put_active], the
   set an RMW's in-flight fence drains. The registration must precede the
   snapTime check so the store-load handshake with the RMW's
   advance_to/find_min pair cannot miss: either the writer sees the fence
   and re-draws, or the RMW sees the writer and waits. *)
let get_put_ts t =
  let rec loop () =
    let ts = Monotonic_counter.inc_and_get t.time_counter in
    let h = Active_set.add t.active ts in
    let hp = Active_set.add t.put_active ts in
    if ts <= Monotonic_counter.get t.snap_time then begin
      Active_set.remove t.put_active hp;
      Active_set.remove t.active h;
      loop ()
    end
    else (ts, h, hp)
  in
  loop ()

let end_op t h = Active_set.remove t.active h

let end_put t ~active ~put =
  Active_set.remove t.put_active put;
  Active_set.remove t.active active

(* Batch timestamps: bare increments, no Active registration. Only legal
   while the caller excludes every snapshot fence that could observe the
   batched keys — the single store holds its shared-exclusive lock in
   exclusive mode, the shard router additionally holds its router lock in
   shared mode against the (exclusive) cross-shard [getSnap]. *)
let batch_ts t = Monotonic_counter.inc_and_get t.time_counter

(* The RMW in-flight fence (Algorithm 3 as deployed here, see Db.rmw):
   make any put that drew an older timestamp but has not yet published
   re-draw, and drain the ones already committed to theirs. *)
let rmw_fence t ~ts =
  ignore (Monotonic_counter.advance_to t.snap_time (ts - 1));
  let b = Backoff.create () in
  let rec wait () =
    match Active_set.find_min t.put_active with
    | Some m when m < ts ->
        Backoff.once b;
        wait ()
    | Some _ | None -> ()
  in
  wait ()

type snapshot_mode = Serializable | Linearizable | Unsafe_naive

(* Algorithm 2, getSnap minus the snapshot-handle bookkeeping: choose and
   fence a snapshot timestamp. *)
let snap_ts t ~mode =
  match mode with
  | Unsafe_naive ->
      (* Ablation: the strawman rejected in §3.2.1 (Figures 3-4) — read
         timeCounter directly; concurrent puts can make scans
         unserializable. *)
      Monotonic_counter.get t.time_counter
  | Serializable | Linearizable ->
      let ts = Monotonic_counter.get t.time_counter in
      let ts =
        match mode with
        | Linearizable -> ts
        | Serializable | Unsafe_naive -> (
            (* Serializable default: step below every in-flight write
               (lines 10-11); the scan may read slightly "in the past". *)
            match Active_set.find_min t.active with
            | Some tsa -> min ts (tsa - 1)
            | None -> ts)
      in
      ignore (Monotonic_counter.advance_to t.snap_time ts);
      (* Line 13: wait out writes whose timestamps are below snapTime;
         each iteration implies progress of some writer or getSnap. *)
      let b = Backoff.create () in
      let rec wait () =
        match Active_set.find_min t.active with
        | Some m when m < Monotonic_counter.get t.snap_time ->
            Backoff.once b;
            wait ()
        | Some _ | None -> ()
      in
      wait ();
      Monotonic_counter.get t.snap_time

let register_snapshot t ?ttl ~now:now_s ts =
  if ts > 0 then Some (Snapshot_registry.install t.snapshots ?ttl ~now:now_s ts)
  else None

let release_snapshot t handle = Snapshot_registry.remove t.snapshots handle

let live_snapshots t ~now:now_s =
  Snapshot_registry.live_timestamps t.snapshots ~now:now_s
