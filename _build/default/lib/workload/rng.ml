type t = { mutable state : int }

let golden = 0x1e3779b97f4a7c15

let create seed = { state = (seed * 2 + 1) land max_int }

let next t =
  t.state <- (t.state + golden) land max_int;
  Clsm_util.Hashing.mix64 t.state

let split t = create (next t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  next t mod bound

let float t = float_of_int (next t land ((1 lsl 52) - 1)) /. float_of_int (1 lsl 52)

let bool t p = float t < p
