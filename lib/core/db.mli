(** cLSM: a concurrent log-structured data store.

    This is the paper's algorithm end to end:

    - {b Algorithm 1} — put/get over the global component pointers [Pm]
      (mutable memtable), [P'm] (immutable memtable being merged) and [Pd]
      (the disk component), protected by an RCU-like pointer protocol with
      per-component reference counters. Gets never block; puts hold a
      writer-preference shared-exclusive lock in shared mode; the merge
      hooks [beforeMerge]/[afterMerge] take it exclusively for two short
      pointer-swap critical sections.
    - {b Algorithm 2} — multi-versioned snapshots: a global [timeCounter],
      the [Active] set of in-flight put timestamps, and the monotone
      [snapTime]; {!get_snap} returns a timestamp no active put can
      invalidate, and {!val-rmw}/{!put} acquire timestamps through the
      rollback-on-race [getTS].
    - {b Algorithm 3} — non-blocking atomic read-modify-write via
      optimistic conflict detection on the memtable skip-list.

    All operations are safe to call from any number of domains. One
    background domain runs the maintenance service: memtable rotation,
    flush to level 0, and leveled compaction with snapshot-aware GC. *)

include Store_sig.EXTENDED
