test/test_cow_store.ml: Alcotest Clsm_core Clsm_lsm Clsm_workload Cow_memtable Cow_store Db Domain Entry Filename Internal_key List Options Printf Unix
