lib/sim/sim_mutex.ml: Engine Queue
