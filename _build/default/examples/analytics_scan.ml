(* Online analytics over a live store — the paper's motivating use of
   consistent snapshot scans (§1, §2.1): an order-processing workload keeps
   writing two-row "orders" while an analytics domain repeatedly scans a
   snapshot and checks an invariant that only holds on consistent views:
   every order header has a matching detail row written *before* it.

   Writers insert detail first, then header. A consistent snapshot can
   therefore contain a detail without its header (header not yet visible)
   but NEVER a header without its detail. An inconsistent scan (e.g. a
   non-snapshot read of a moving store) would routinely violate this.

   Run with:  dune exec examples/analytics_scan.exe *)

open Clsm_core

let orders = 3_000

let writer db seed () =
  for i = 0 to orders - 1 do
    let id = Printf.sprintf "%c%06d" seed i in
    let amount = (i mod 90) + 10 in
    Db.put db
      ~key:(Printf.sprintf "detail:%s" id)
      ~value:(Printf.sprintf "amount=%d" amount);
    Db.put db
      ~key:(Printf.sprintf "order:%s" id)
      ~value:(Printf.sprintf "total=%d" amount)
  done

let analytics db stop () =
  let scans = ref 0 and orphans = ref 0 and revenue_samples = ref [] in
  while not (Atomic.get stop) do
    let snap = Db.get_snap db in
    (* One consistent pass: collect details, then check headers. *)
    let details = Hashtbl.create 1024 in
    List.iter
      (fun (k, v) ->
        Hashtbl.replace details
          (String.sub k 7 (String.length k - 7))
          v)
      (Db.range ~snapshot:snap ~start:"detail:" ~stop:"detail;" db);
    let revenue = ref 0 in
    List.iter
      (fun (k, v) ->
        let id = String.sub k 6 (String.length k - 6) in
        if not (Hashtbl.mem details id) then incr orphans;
        Scanf.sscanf v "total=%d" (fun t -> revenue := !revenue + t))
      (Db.range ~snapshot:snap ~start:"order:" ~stop:"order;" db);
    Db.release_snapshot db snap;
    revenue_samples := !revenue :: !revenue_samples;
    incr scans
  done;
  (!scans, !orphans, !revenue_samples)

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "clsm_analytics" in
  let opts =
    { (Options.default ~dir) with Options.memtable_bytes = 4 * 1024 * 1024 }
  in
  let db = Db.open_store opts in
  let stop = Atomic.make false in
  let analytics_d = Domain.spawn (analytics db stop) in
  let writers = List.map (fun s -> Domain.spawn (writer db s)) [ 'a'; 'b' ] in
  List.iter Domain.join writers;
  Atomic.set stop true;
  let scans, orphans, samples = Domain.join analytics_d in
  Printf.printf
    "analytics ran %d consistent scans while %d orders were written\n" scans
    (2 * orders);
  Printf.printf "orphan headers observed: %d (must be 0)\n" orphans;
  (match samples with
  | last :: _ -> Printf.printf "final observed revenue: %d\n" last
  | [] -> ());
  assert (orphans = 0);
  Db.close db;
  print_endline "analytics_scan: OK"
