lib/workload/workload_spec.mli: Key_dist Rng
