open Clsm_util

type t = {
  restart_interval : int;
  buf : Buffer.t;
  mutable restarts : int list; (* reversed offsets *)
  mutable count_since_restart : int;
  mutable entries : int;
  mutable last : string option;
}

let create ?(restart_interval = 16) () =
  if restart_interval < 1 then invalid_arg "Block_builder.create";
  {
    restart_interval;
    buf = Buffer.create 4096;
    restarts = [ 0 ];
    count_since_restart = 0;
    entries = 0;
    last = None;
  }

let shared_prefix_length a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let add t ~key ~value =
  let shared =
    if t.count_since_restart >= t.restart_interval then begin
      t.restarts <- Buffer.length t.buf :: t.restarts;
      t.count_since_restart <- 0;
      0
    end
    else
      match t.last with
      | None -> 0
      | Some last -> shared_prefix_length last key
  in
  let non_shared = String.length key - shared in
  Varint.write t.buf shared;
  Varint.write t.buf non_shared;
  Varint.write t.buf (String.length value);
  Buffer.add_substring t.buf key shared non_shared;
  Buffer.add_string t.buf value;
  t.count_since_restart <- t.count_since_restart + 1;
  t.entries <- t.entries + 1;
  t.last <- Some key

let finish t =
  let restarts = List.rev t.restarts in
  let n = List.length restarts in
  List.iter (fun off -> Binary.write_fixed32 t.buf off) restarts;
  Binary.write_fixed32 t.buf n;
  Buffer.contents t.buf

let num_entries t = t.entries

let estimated_size t =
  Buffer.length t.buf + (4 * List.length t.restarts) + 4

let is_empty t = t.entries = 0

let reset t =
  Buffer.clear t.buf;
  t.restarts <- [ 0 ];
  t.count_since_restart <- 0;
  t.entries <- 0;
  t.last <- None

let last_key t = t.last
