lib/workload/histogram.ml: Array Float List
