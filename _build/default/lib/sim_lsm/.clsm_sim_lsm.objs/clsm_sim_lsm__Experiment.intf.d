lib/sim_lsm/experiment.mli: Clsm_workload Costs System Workload_spec
