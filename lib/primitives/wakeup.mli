(** Missed-wakeup-safe notification cell (Mutex + Condition + generation).

    The classic condition-variable pitfall is the lost wakeup: a waiter
    checks for work, finds none, and blocks just as a producer signals.
    This cell closes the window with a generation counter incremented
    under the mutex by every {!signal}: a waiter reads {!current}, then
    re-checks for work, then calls [wait ~seen]; any signal issued after
    the [current] read makes the wait return immediately.

    Intended pattern (the maintenance scheduler's worker loop):
    {[
      let rec loop seen =
        match find_work () with
        | Some w -> do_work w; loop (Wakeup.current cell)
        | None -> loop (Wakeup.wait cell ~seen)
      in
      loop (Wakeup.current cell)
    ]} *)

type t

val create : unit -> t

val current : t -> int
(** The generation now. Read it {e before} checking for work. *)

val signal : t -> unit
(** Advance the generation and wake every waiter. Cheap when nobody
    waits (one uncontended mutex section). *)

val wait : t -> seen:int -> int
(** Block until the generation differs from [seen]; returns the new
    generation. Returns immediately if it already differs. *)

val waiters : t -> int
(** Instantaneous number of blocked waiters (for stats and tests). *)
