lib/workload/store_ops.mli: Clsm_baselines Clsm_core
