(* Benchmark harness entry point.

   Default: run every paper figure through the simulator.
   --figure <id>   one figure (fig1 fig5a fig5b fig6a fig6b fig7a fig7b
                   fig8 fig9 fig10 fig11)
   --calibrate     Bechamel microbenchmarks of the real implementation
   --real [quick]  real-execution cross-checks (multi-domain driver)
   --ablations     design-choice ablation sweeps
   --compaction [smoke] [--out FILE]
                   parallel-subcompaction + mixed-workload bench; emits
                   the clsm-bench/1 JSON schema (default
                   BENCH_compaction.json)
   --sharded [smoke] [--out FILE]
                   mixed workload against the range-shard router at
                   shards 1/2/4; same JSON schema (default
                   BENCH_sharded.json)
   --durability [smoke] [--out FILE]
                   4-writer durable-put bench across the three WAL
                   policies (per-write / group / async); same JSON
                   schema (default BENCH_durability.json)
   --read [smoke] [--out FILE]
                   reader-domain scaling (1..16 readers × uniform/zipfian
                   × point-get/scan) over a cache-resident working set;
                   same JSON schema (default BENCH_read.json) *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | "--compaction" :: rest ->
      let scale =
        if List.mem "smoke" rest then Bench_store.Smoke else Bench_store.Full
      in
      let rec out_of = function
        | "--out" :: path :: _ -> path
        | _ :: tl -> out_of tl
        | [] -> "BENCH_compaction.json"
      in
      Bench_store.run ~scale ~out:(out_of rest)
  | "--durability" :: rest ->
      let scale =
        if List.mem "smoke" rest then Bench_store.Smoke else Bench_store.Full
      in
      let rec out_of = function
        | "--out" :: path :: _ -> path
        | _ :: tl -> out_of tl
        | [] -> "BENCH_durability.json"
      in
      Bench_store.run_durability ~scale ~out:(out_of rest)
  | "--read" :: rest ->
      let scale =
        if List.mem "smoke" rest then Bench_store.Smoke else Bench_store.Full
      in
      let rec out_of = function
        | "--out" :: path :: _ -> path
        | _ :: tl -> out_of tl
        | [] -> "BENCH_read.json"
      in
      Bench_store.run_read ~scale ~out:(out_of rest)
  | "--sharded" :: rest ->
      let scale =
        if List.mem "smoke" rest then Bench_store.Smoke else Bench_store.Full
      in
      let rec out_of = function
        | "--out" :: path :: _ -> path
        | _ :: tl -> out_of tl
        | [] -> "BENCH_sharded.json"
      in
      Bench_sharded.run ~scale ~out:(out_of rest)
  | [] | [ "--figures" ] ->
      print_endline
        "cLSM benchmark harness: regenerating all paper figures (simulated \
         multicore; see DESIGN.md)";
      Figures.run_all ()
  | [ "--figure"; name ] -> Figures.run name
  | [ "--calibrate" ] -> Calibrate.run ()
  | [ "--real" ] -> Real_check.run ~quick:false
  | [ "--real"; "quick" ] -> Real_check.run ~quick:true
  | [ "--ablations" ] -> Ablations.run ()
  | [ "--sensitivity" ] -> Sensitivity.run ()
  | [ "--all" ] ->
      Calibrate.run ();
      Figures.run_all ();
      Ablations.run ();
      Sensitivity.run ();
      Real_check.run ~quick:true
  | _ ->
      prerr_endline
        "usage: main.exe [--figure <id> | --calibrate | --real [quick] | \
         --ablations | --sensitivity | --all]";
      exit 1
