lib/core/memtable_intf.ml: Clsm_lsm
