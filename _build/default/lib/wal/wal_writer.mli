(** Write-ahead-log writer.

    In [Async] mode (the common configuration, paper §2.3/§4) [append] only
    pushes the record onto a non-blocking queue — "a write only queues the
    request for logging" — so writes proceed at memory speed and a handful
    of recent writes may be lost on a crash. Queued records are drained to
    the file opportunistically by whichever appender wins a try-lock (group
    commit), or synchronously by {!flush}.

    In [Sync] mode every [append] writes and fsyncs before returning. *)

type t
type mode = Sync | Async

val create : ?mode:mode -> string -> t
(** Open (create/truncate) the log file at the given path.
    Default mode: [Async]. *)

val append : t -> string -> unit
(** Log one record. Thread-safe; non-blocking in [Async] mode except for an
    opportunistic drain attempt. *)

val flush : t -> unit
(** Drain the queue, write everything out and [fsync]. *)

val close : t -> unit
(** {!flush} then close the file. *)

val path : t -> string
val queued : t -> int
(** Records still in the in-memory queue (test/stats). *)

val abandon : t -> unit
(** Close the file without draining the queue or syncing — test hook that
    leaves the file exactly as a crash would. *)
