type t =
  | Flush
  | Compact of { src_level : int; target_level : int }
  | In_shard of { shard : int; job : t }

let rec priority = function
  | Flush -> 0
  | Compact { src_level; _ } -> src_level + 1
  (* Routing is transparent to urgency: a shard's flush still beats any
     compaction anywhere. *)
  | In_shard { job; _ } -> priority job

let compare a b = Int.compare (priority a) (priority b)

let rec levels = function
  | Flush -> None
  | Compact { src_level; target_level } -> Some (src_level, target_level)
  | In_shard { job; _ } -> levels job

let rec pp ppf = function
  | Flush -> Format.fprintf ppf "flush"
  | Compact { src_level; target_level } ->
      Format.fprintf ppf "compact(L%d->L%d)" src_level target_level
  | In_shard { shard; job } -> Format.fprintf ppf "shard%d:%a" shard pp job
