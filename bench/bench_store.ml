(* Reproducible compaction + mixed-workload benchmark against the real
   store, emitting a stable machine-readable JSON schema
   ("clsm-bench/1") so per-PR runs accumulate into a perf trajectory
   (BENCH_compaction.json checked in, BENCH_smoke.json as a CI
   artifact).

   Two phases:

   1. [compaction_merge] — a large fully-overlapping L0→L1 merge driven
      directly through {!Clsm_lsm.Compaction.run_parallel} at
      max_subcompactions ∈ {1, 2, 4}, one domain per subrange via
      {!Clsm_maintenance.Scheduler.fan_out}. Verifies the parallel
      output's entry stream is identical to the sequential one and
      reports per-setting wall-clock + the speedup ratio.

   2. [mixed_workload] — multi-domain writers against an open store with
      a small memtable (so flushes and L0→L1 merges dominate), once with
      sequential compactions and once with max_subcompactions=4;
      reports ops/s, put p50/p99, writer stall seconds and compaction
      seconds from the store's own counters. *)

open Clsm_lsm
open Clsm_primitives
module Scheduler = Clsm_maintenance.Scheduler
module Histogram = Clsm_workload.Histogram
module Db = Clsm_core.Db
module Options = Clsm_core.Options
module Stats = Clsm_core.Stats

type scale = Smoke | Full

let scale_name = function Smoke -> "smoke" | Full -> "full"

(* ---------- tiny JSON writer (objects ordered, floats fixed) ---------- *)

module J = struct
  type t =
    | Int of int
    | Float of float
    | Bool of bool
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let rec emit b = function
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (Printf.sprintf "%.6f" f)
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Str s -> Buffer.add_string b (Printf.sprintf "%S" s)
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            emit b x)
          xs;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "%S:" k);
            emit b v)
          fields;
        Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 4096 in
    emit b t;
    Buffer.contents b
end

(* ---------- scratch directories ---------- *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "clsm_bench_%d_%d" (Unix.getpid ()) !counter)
    in
    let rec rm path =
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
    in
    rm d;
    Unix.mkdir d 0o755;
    d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* ---------- phase 1: the L0→L1 merge itself ---------- *)

let merge_cfg =
  {
    Lsm_config.default with
    Lsm_config.target_file_size = 1 lsl 20;
    block_size = 4096;
  }

(* [num_files] fully-overlapping L0 runs: file i holds every key with
   index ≡ i (mod num_files), so every subrange draws from every input —
   the worst case the boundary planner has to balance. *)
let build_l0_inputs ~dir ~num_files ~entries_per_file ~value_bytes =
  let alloc = Atomic.make 1 in
  let value i = String.init value_bytes (fun j -> Char.chr ((i + j) mod 26 + 97)) in
  List.init num_files (fun fi ->
      let number = Atomic.fetch_and_add alloc 1 in
      let b =
        Clsm_sstable.Table_builder.create ~block_size:merge_cfg.Lsm_config.block_size
          ~filter_key_of:Internal_key.user_key_of ~cmp:Internal_key.comparator
          ~path:(Table_file.table_path ~dir number)
          ()
      in
      for e = 0 to entries_per_file - 1 do
        let idx = (e * num_files) + fi in
        Clsm_sstable.Table_builder.add b
          ~key:(Internal_key.make (Printf.sprintf "key%010d" idx) (idx + 1))
          ~value:(Entry.encode (Entry.Value (value idx)))
      done;
      ignore (Clsm_sstable.Table_builder.finish b);
      Refcounted.create ~release:Table_file.release
        (Table_file.open_number ~dir number))

let output_entries outputs =
  List.concat_map
    (fun f ->
      Clsm_sstable.Table.fold
        (fun k v acc -> (k, Hashtbl.hash v) :: acc)
        (Refcounted.value f).Table_file.table []
      |> List.rev)
    outputs

let drop_outputs outputs =
  List.iter
    (fun f ->
      Table_file.mark_obsolete (Refcounted.value f);
      Refcounted.retire f)
    outputs

let run_merge_phase ~scale =
  let num_files = 8 in
  let entries_per_file = match scale with Smoke -> 2_000 | Full -> 50_000 in
  let value_bytes = 100 in
  let dir = fresh_dir () in
  let inputs = build_l0_inputs ~dir ~num_files ~entries_per_file ~value_bytes in
  let input_bytes =
    List.fold_left (fun a f -> a + (Refcounted.value f).Table_file.size) 0 inputs
  in
  let task =
    {
      Compaction.src_level = 0;
      inputs_lo = inputs;
      inputs_hi = [];
      target_level = 1;
      drop_tombstones = true;
    }
  in
  let alloc = Atomic.make 100_000 in
  let run_once m =
    let t0 = Unix.gettimeofday () in
    let outputs, fanout =
      Compaction.run_parallel ~cfg:merge_cfg ~dir
        ~alloc_number:(fun () -> Atomic.fetch_and_add alloc 1)
        ~snapshots:[] ~fan_out:Scheduler.fan_out ~max_subcompactions:m task
    in
    let wall = Unix.gettimeofday () -. t0 in
    (wall, fanout, outputs)
  in
  let repeats = match scale with Smoke -> 1 | Full -> 3 in
  let baseline = ref [] in
  let rows =
    List.map
      (fun m ->
        (* best-of-N to shave scheduler noise; correctness checked on
           every run *)
        let best = ref infinity and fanout = ref 1 and identical = ref true in
        let output_files = ref 0 and output_bytes = ref 0 and entries = ref 0 in
        for _ = 1 to repeats do
          let wall, f, outputs = run_once m in
          let ents = output_entries outputs in
          if m = 1 && !baseline = [] then baseline := ents
          else identical := !identical && ents = !baseline;
          output_files := List.length outputs;
          output_bytes :=
            List.fold_left
              (fun a f -> a + (Refcounted.value f).Table_file.size)
              0 outputs;
          entries := List.length ents;
          drop_outputs outputs;
          if wall < !best then best := wall;
          fanout := f
        done;
        ( m,
          J.Obj
            [
              ("max_subcompactions", J.Int m);
              ("fanout", J.Int !fanout);
              ("wall_s", J.Float !best);
              ("entries", J.Int !entries);
              ("input_bytes", J.Int input_bytes);
              ("output_files", J.Int !output_files);
              ("output_bytes", J.Int !output_bytes);
              ("identical_to_sequential", J.Bool !identical);
            ],
          !best ))
      [ 1; 2; 4 ]
  in
  List.iter
    (fun f ->
      Table_file.mark_obsolete (Refcounted.value f);
      Refcounted.retire f)
    inputs;
  rm_rf dir;
  let seq_wall =
    List.find_map (fun (m, _, w) -> if m = 1 then Some w else None) rows
    |> Option.get
  in
  let speedups =
    List.filter_map
      (fun (m, _, w) ->
        if m = 1 || w <= 0. then None
        else Some (string_of_int m, J.Float (seq_wall /. w)))
      rows
  in
  ( J.List (List.map (fun (_, row, _) -> row) rows),
    J.Obj speedups )

(* ---------- phase 2: mixed workload against the open store ---------- *)

let mixed_opts ~dir ~max_subcompactions =
  let base = Options.default ~dir in
  {
    base with
    Options.memtable_bytes = 256 * 1024;
    wal_enabled = false;
    maintenance_workers = 2;
    max_subcompactions;
    lsm =
      {
        Lsm_config.default with
        Lsm_config.level1_max_bytes = 2 * 1024 * 1024;
        target_file_size = 256 * 1024;
        l0_compaction_trigger = 4;
        l0_slowdown_trigger = 8;
        l0_stall_limit = 12;
      };
  }

(* Deterministic per-domain key stream (split-mix style) over a shared
   key space so compactions see real overlap. *)
let next_key state ~key_space =
  (* split-mix-style, constants truncated to OCaml's 63-bit ints *)
  state := !state + 0x1E3779B97F4A7C15;
  let z = !state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land max_int mod key_space

let run_mixed_phase ~scale =
  let writers = 2 in
  let ops_per_writer = match scale with Smoke -> 4_000 | Full -> 50_000 in
  let key_space = match scale with Smoke -> 10_000 | Full -> 100_000 in
  let value = String.make 256 'v' in
  List.map
    (fun max_subcompactions ->
      let dir = fresh_dir () in
      let db = Db.open_store (mixed_opts ~dir ~max_subcompactions) in
      let t0 = Unix.gettimeofday () in
      let worker w =
        let h = Histogram.create () in
        let state = ref (w * 7919) in
        for i = 1 to ops_per_writer do
          let k = Printf.sprintf "user%08d" (next_key state ~key_space) in
          let op_start = Unix.gettimeofday () in
          if i mod 10 = 0 then ignore (Db.get db k)
          else Db.put db ~key:k ~value;
          Histogram.record h (Unix.gettimeofday () -. op_start)
        done;
        h
      in
      let domains =
        List.init (writers - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1)))
      in
      let h0 = worker 0 in
      let hists = h0 :: List.map Domain.join domains in
      let wall = Unix.gettimeofday () -. t0 in
      let h = Histogram.merge hists in
      let s = Db.stats db in
      Db.close db;
      rm_rf dir;
      let ops = writers * ops_per_writer in
      J.Obj
        [
          ("max_subcompactions", J.Int max_subcompactions);
          ("writers", J.Int writers);
          ("ops", J.Int ops);
          ("wall_s", J.Float wall);
          ("ops_per_s", J.Float (float_of_int ops /. wall));
          ("op_p50_us", J.Float (Histogram.percentile h 50.0 *. 1e6));
          ("op_p99_us", J.Float (Histogram.percentile h 99.0 *. 1e6));
          ("stall_s", J.Float (float_of_int s.Stats.stall_ns /. 1e9));
          ("write_stalls", J.Int s.Stats.write_stalls);
          ( "slowdown_s",
            J.Float (float_of_int s.Stats.slowdown_delay_ns /. 1e9) );
          ("compaction_s", J.Float (float_of_int s.Stats.compaction_ns /. 1e9));
          ("compactions", J.Int s.Stats.compactions);
          ("subcompactions", J.Int s.Stats.subcompactions);
          ("max_compaction_fanout", J.Int s.Stats.max_compaction_fanout);
          ("flushes", J.Int s.Stats.flushes);
          ("bytes_flushed", J.Int s.Stats.bytes_flushed);
          ("bytes_compacted", J.Int s.Stats.bytes_compacted);
        ])
    [ 1; 4 ]

(* ---------- durability bench: per-write vs group vs async WAL ---------- *)

(* Four writer domains hammer puts through each WAL policy. The memtable
   is big enough that flush/compaction never interfere: the measured gap
   is purely the commit path. Per-write pays one fsync per put; group
   commit amortizes the fsync across every committer that boards while
   the previous leader is inside [w_fsync] (batch ceiling = concurrent
   writers, so the expected gain at 4 writers is bounded by 4x fewer
   fsyncs plus whatever mutex-convoy overhead per-write adds on top of
   the raw fsync); async acknowledges nothing and shows the ceiling. *)

let durability_opts ~dir ~wal_sync =
  let base = Options.default ~dir in
  {
    base with
    Options.memtable_bytes = 1 lsl 24;
    wal_enabled = true;
    wal_sync;
    maintenance_workers = 1;
  }

let run_durability_cell_once ~writers ~name ~wal_sync ~n ~value =
  let dir = fresh_dir () in
  let db = Db.open_store (durability_opts ~dir ~wal_sync) in
  let t0 = Unix.gettimeofday () in
  let worker w =
    let h = Histogram.create () in
    for i = 1 to n do
      let k = Printf.sprintf "w%dk%08d" w i in
      let op_start = Unix.gettimeofday () in
      Db.put db ~key:k ~value;
      Histogram.record h (Unix.gettimeofday () -. op_start)
    done;
    h
  in
  let domains =
    List.init (writers - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1)))
  in
  let h0 = worker 0 in
  let hists = h0 :: List.map Domain.join domains in
  let wall = Unix.gettimeofday () -. t0 in
  let h = Histogram.merge hists in
  let s = Db.stats db in
  Db.close db;
  rm_rf dir;
  let ops = writers * n in
  ( float_of_int ops /. wall,
    J.Obj
      [
        ("mode", J.Str name);
        ("writers", J.Int writers);
        ("ops", J.Int ops);
        ("wall_s", J.Float wall);
        ("ops_per_s", J.Float (float_of_int ops /. wall));
        ("put_p50_us", J.Float (Histogram.percentile h 50.0 *. 1e6));
        ("put_p99_us", J.Float (Histogram.percentile h 99.0 *. 1e6));
        ("fsync_rounds", J.Int s.Stats.wal_group_commits);
        ("records_acked", J.Int s.Stats.wal_group_records);
        ("fsyncs_saved", J.Int s.Stats.wal_fsyncs_saved);
        ( "mean_group_size",
          J.Float
            (if s.Stats.wal_group_commits = 0 then 0.0
             else
               float_of_int s.Stats.wal_group_records
               /. float_of_int s.Stats.wal_group_commits) );
        ("commit_wait_p50_us", J.Int (Stats.commit_wait_percentile_us s ~pct:50.0));
        ("commit_wait_p99_us", J.Int (Stats.commit_wait_percentile_us s ~pct:99.0));
      ] )

(* fsync latency on shared hosts wanders between runs; best-of-N per cell
   keeps the cross-mode ratios from comparing two different instants. *)
let run_durability_cell ~repeats ~writers ~name ~wal_sync ~n ~value =
  let best = ref None in
  for _ = 1 to repeats do
    let rate, row = run_durability_cell_once ~writers ~name ~wal_sync ~n ~value in
    match !best with
    | Some (r, _) when r >= rate -> ()
    | _ -> best := Some (rate, row)
  done;
  Option.get !best

let run_durability_phase ~scale =
  let ops_per_writer = match scale with Smoke -> 250 | Full -> 1_000 in
  let repeats = match scale with Smoke -> 1 | Full -> 3 in
  let value = String.make 128 'v' in
  let writer_counts = [ 1; 2; 4; 8; 16 ] in
  let modes =
    [
      ("per_write", `Per_write, 1);
      ("group", `Group Options.default_group_commit, 4);
      (* async acks nothing; more ops for a stable rate *)
      ("async", `Async, 20);
    ]
  in
  List.concat_map
    (fun writers ->
      List.map
        (fun (name, wal_sync, mult) ->
          let rate, row =
            run_durability_cell ~repeats ~writers ~name ~wal_sync
              ~n:(ops_per_writer * mult) ~value
          in
          Printf.printf "  %-10s %d writers %10.0f ops/s\n%!" name writers rate;
          (name, writers, rate, row))
        modes)
    writer_counts

let run_durability ~scale ~out =
  Printf.printf "clsm durability bench (%s scale, %d core(s))\n%!"
    (scale_name scale)
    (Domain.recommended_domain_count ());
  let rows = run_durability_phase ~scale in
  let rate name writers =
    List.find_map
      (fun (n, w, r, _) -> if n = name && w = writers then Some r else None)
      rows
    |> Option.get
  in
  let speedups =
    List.filter_map
      (fun (n, w, _, _) ->
        if n = "group" then
          let s = rate "group" w /. rate "per_write" w in
          Printf.printf "  group vs per-write at %d writers: %.2fx\n%!" w s;
          Some (string_of_int w, J.Float s)
        else None)
      rows
  in
  let doc =
    J.Obj
      [
        ("schema", J.Str "clsm-bench/1");
        ("bench", J.Str "durability");
        ("scale", J.Str (scale_name scale));
        ( "host",
          J.Obj
            [ ("recommended_domains", J.Int (Domain.recommended_domain_count ())) ]
        );
        ("modes", J.List (List.map (fun (_, _, _, row) -> row) rows));
        ("group_speedup_vs_per_write", J.Obj speedups);
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" out

(* ---------- read bench: reader-domain scaling over a resident set ---------- *)

(* One store, preloaded and fully compacted, working set sized to the
   block cache: every cell then measures the read path itself (lock-free
   cache hits, merge iterators, readahead) rather than disk. Cells are
   readers × distribution × operation; the store is shared across cells
   because reads don't perturb it. *)

module Key_dist = Clsm_workload.Key_dist
module Rng = Clsm_workload.Rng
module Cache = Clsm_sstable.Cache

let read_opts ~dir =
  let base = Options.default ~dir in
  {
    base with
    Options.memtable_bytes = 1 lsl 22;
    wal_enabled = false;
    cache_bytes = 1 lsl 26;
    maintenance_workers = 1;
  }

type read_op = Point | Scan of int

let run_read_cell_once db ~readers ~dist ~op ~ops_per_reader ~seed0 =
  let c0 = Db.cache_stats db in
  let t0 = Unix.gettimeofday () in
  let worker r =
    let rng = Rng.create (seed0 + (r * 7919) + 17) in
    let h = Histogram.create () in
    for _ = 1 to ops_per_reader do
      let k = Key_dist.next_key dist rng in
      let op_start = Unix.gettimeofday () in
      (match op with
      | Point -> ignore (Db.get db k)
      | Scan limit -> ignore (Db.range ~start:k ~limit db));
      Histogram.record h (Unix.gettimeofday () -. op_start)
    done;
    h
  in
  let domains =
    List.init (readers - 1) (fun r -> Domain.spawn (fun () -> worker (r + 1)))
  in
  let h0 = worker 0 in
  let hists = h0 :: List.map Domain.join domains in
  let wall = Unix.gettimeofday () -. t0 in
  let c1 = Db.cache_stats db in
  let h = Histogram.merge hists in
  let ops = readers * ops_per_reader in
  let hits = c1.Cache.hits - c0.Cache.hits in
  let misses = c1.Cache.misses - c0.Cache.misses in
  ( float_of_int ops /. wall,
    J.Obj
      [
        ("readers", J.Int readers);
        ("ops", J.Int ops);
        ("wall_s", J.Float wall);
        ("ops_per_s", J.Float (float_of_int ops /. wall));
        ("op_p50_us", J.Float (Histogram.percentile h 50.0 *. 1e6));
        ("op_p99_us", J.Float (Histogram.percentile h 99.0 *. 1e6));
        ("cache_hits", J.Int hits);
        ("cache_misses", J.Int misses);
        ( "cache_hit_rate",
          J.Float
            (if hits + misses = 0 then 1.0
             else float_of_int hits /. float_of_int (hits + misses)) );
        ("readaheads", J.Int (c1.Cache.readaheads - c0.Cache.readaheads));
        ( "readahead_blocks",
          J.Int (c1.Cache.readahead_blocks - c0.Cache.readahead_blocks) );
        ( "singleflight_waits",
          J.Int (c1.Cache.singleflight_waits - c0.Cache.singleflight_waits) );
      ] )

(* Reader throughput on a shared host wanders between runs; best-of-N per
   cell keeps the scaling curve from comparing two different instants. *)
let run_read_cell db ~repeats ~readers ~dist ~op ~ops_per_reader ~seed0 =
  let best = ref None in
  for rep = 1 to repeats do
    let rate, row =
      run_read_cell_once db ~readers ~dist ~op ~ops_per_reader
        ~seed0:(seed0 + (rep * 104729))
    in
    match !best with
    | Some (r, _) when r >= rate -> ()
    | _ -> best := Some (rate, row)
  done;
  Option.get !best

let run_read ~scale ~out =
  Printf.printf "clsm read bench (%s scale, %d core(s))\n%!" (scale_name scale)
    (Domain.recommended_domain_count ());
  let keys = match scale with Smoke -> 5_000 | Full -> 100_000 in
  let ops_point = match scale with Smoke -> 2_000 | Full -> 20_000 in
  let ops_scan = match scale with Smoke -> 200 | Full -> 2_000 in
  let repeats = match scale with Smoke -> 1 | Full -> 3 in
  let reader_counts =
    match scale with Smoke -> [ 1; 4 ] | Full -> [ 1; 2; 4; 8; 16 ]
  in
  let scan_limit = 50 in
  let value = String.make 256 'v' in
  let dir = fresh_dir () in
  let db = Db.open_store (read_opts ~dir) in
  for i = 0 to keys - 1 do
    Db.put db ~key:(Key_dist.key_of_index i) ~value
  done;
  Db.compact_now db;
  (* Warm pass: fault every data block into the cache so cells measure a
     resident working set, not first-touch IO. *)
  let resident = Db.fold (fun _ _ n -> n + 1) db 0 in
  Printf.printf "  preloaded %d keys (%d visible), cache warmed\n%!" keys
    resident;
  let dists =
    [ ("uniform", Key_dist.uniform keys); ("zipfian", Key_dist.zipf keys) ]
  in
  let ops =
    [ ("point", Point, ops_point); ("scan", Scan scan_limit, ops_scan) ]
  in
  let cells =
    List.concat_map
      (fun readers ->
        List.concat_map
          (fun (dist_name, dist) ->
            List.map
              (fun (op_name, op, ops_per_reader) ->
                let rate, row =
                  run_read_cell db ~repeats ~readers ~dist ~op ~ops_per_reader
                    ~seed0:
                      ((readers * 131) + (String.length dist_name * 17)
                     + ops_per_reader)
                in
                Printf.printf "  %-7s %-8s %2d readers %12.0f ops/s\n%!"
                  op_name dist_name readers rate;
                let row =
                  match row with
                  | J.Obj fields ->
                      J.Obj
                        (("dist", J.Str dist_name)
                        :: ("op", J.Str op_name)
                        :: fields)
                  | other -> other
                in
                (op_name, dist_name, readers, rate, row))
              ops)
          dists)
      reader_counts
  in
  let rate op_name dist_name readers =
    List.find_map
      (fun (o, d, w, r, _) ->
        if o = op_name && d = dist_name && w = readers then Some r else None)
      cells
  in
  let scaling =
    List.filter_map
      (fun readers ->
        match
          (rate "point" "uniform" readers, rate "point" "uniform" 1)
        with
        | Some r, Some r1 when readers > 1 ->
            let s = r /. r1 in
            Printf.printf "  point/uniform scaling at %d readers: %.2fx\n%!"
              readers s;
            Some (string_of_int readers, J.Float s)
        | _ -> None)
      reader_counts
  in
  let s = Db.stats db in
  let c = Db.cache_stats db in
  let store =
    J.Obj
      [
        ("gets", J.Int s.Stats.gets);
        ("get_p50_us", J.Int (Stats.get_percentile_us s ~pct:50.0));
        ("get_p99_us", J.Int (Stats.get_percentile_us s ~pct:99.0));
        ("cache_hits", J.Int c.Cache.hits);
        ("cache_misses", J.Int c.Cache.misses);
        ("cache_weight", J.Int c.Cache.weight);
        ("cache_pins", J.Int c.Cache.pins);
        ("readaheads", J.Int c.Cache.readaheads);
        ("readahead_blocks", J.Int c.Cache.readahead_blocks);
      ]
  in
  Db.close db;
  rm_rf dir;
  let doc =
    J.Obj
      [
        ("schema", J.Str "clsm-bench/1");
        ("bench", J.Str "read");
        ("scale", J.Str (scale_name scale));
        ( "host",
          J.Obj
            [ ("recommended_domains", J.Int (Domain.recommended_domain_count ())) ]
        );
        ("keys", J.Int keys);
        ("value_bytes", J.Int (String.length value));
        ("scan_limit", J.Int scan_limit);
        ("cells", J.List (List.map (fun (_, _, _, _, row) -> row) cells));
        ("point_uniform_scaling_vs_1_reader", J.Obj scaling);
        ("store", store);
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" out

(* ---------- entry point ---------- *)

let run ~scale ~out =
  Printf.printf "clsm compaction bench (%s scale, %d core(s))\n%!"
    (scale_name scale)
    (Domain.recommended_domain_count ());
  let merge_rows, speedups = run_merge_phase ~scale in
  Printf.printf "  merge phase done\n%!";
  let mixed_rows = run_mixed_phase ~scale in
  Printf.printf "  mixed-workload phase done\n%!";
  let doc =
    J.Obj
      [
        ("schema", J.Str "clsm-bench/1");
        ("bench", J.Str "compaction");
        ("scale", J.Str (scale_name scale));
        ( "host",
          J.Obj
            [ ("recommended_domains", J.Int (Domain.recommended_domain_count ())) ]
        );
        ("compaction_merge", merge_rows);
        ("merge_speedup_vs_sequential", speedups);
        ("mixed_workload", J.List mixed_rows);
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" out
