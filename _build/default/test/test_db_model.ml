(* Model-based testing of the whole store: random operation histories are
   applied both to a Db and to a pure Map model, with compactions, crash/
   reopen cycles and snapshot checks interleaved; at every checkpoint the
   store must agree with the model exactly. *)

open Clsm_core
module M = Map.Make (String)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_test_model_%d_%d" (Unix.getpid ()) !counter)

let small_opts dir =
  let base = Options.default ~dir in
  {
    base with
    Options.memtable_bytes = 8 * 1024;
    cache_bytes = 1 lsl 20;
    lsm =
      {
        base.Options.lsm with
        Clsm_lsm.Lsm_config.level1_max_bytes = 32 * 1024;
        target_file_size = 8 * 1024;
        block_size = 512;
        l0_compaction_trigger = 2;
      };
  }

type model_op =
  | Mput of string * string
  | Mdel of string
  | Mbatch of (string * string option) list
  | Mrmw_incr of string
  | Mcompact
  | Mreopen
  | Mcrash_flushed (* flush WAL then crash: nothing may be lost *)

let apply_model m = function
  | Mput (k, v) -> M.add k v m
  | Mdel k -> M.remove k m
  | Mbatch ops ->
      List.fold_left
        (fun m (k, v) ->
          match v with Some v -> M.add k v m | None -> M.remove k m)
        m ops
  | Mrmw_incr k ->
      let n = match M.find_opt k m with Some s -> int_of_string s | None -> 0 in
      M.add k (string_of_int (n + 1)) m
  | Mcompact | Mreopen | Mcrash_flushed -> m

let apply_db db = function
  | Mput (k, v) ->
      Db.put !db ~key:k ~value:v;
      ()
  | Mdel k -> Db.delete !db ~key:k
  | Mbatch ops ->
      Db.write_batch !db
        (List.map
           (function
             | k, Some v -> Db.Batch_put (k, v)
             | k, None -> Db.Batch_delete k)
           ops)
  | Mrmw_incr k ->
      ignore
        (Db.rmw !db ~key:k (fun v ->
             let n =
               match v with Some s -> int_of_string s | None -> 0
             in
             Db.Set (string_of_int (n + 1))))
  | Mcompact -> Db.compact_now !db
  | Mreopen ->
      let opts = Db.options !db in
      Db.close !db;
      db := Db.open_store opts
  | Mcrash_flushed ->
      let opts = Db.options !db in
      Db.flush_wal !db;
      Db.simulate_crash !db;
      db := Db.open_store opts

let gen_op rng key_space =
  (* plain keys use the k* namespace; counters use ctr* (numeric values) *)
  let key () = Printf.sprintf "k%03d" (Clsm_workload.Rng.int rng key_space) in
  let value () = Printf.sprintf "v%d" (Clsm_workload.Rng.int rng 1_000_000) in
  let r = Clsm_workload.Rng.int rng 100 in
  if r < 55 then Mput (key (), value ())
  else if r < 70 then Mdel (key ())
  else if r < 80 then
    Mbatch
      (List.init
         (1 + Clsm_workload.Rng.int rng 5)
         (fun _ ->
           if Clsm_workload.Rng.bool rng 0.8 then (key (), Some (value ()))
           else (key (), None)))
  else if r < 92 then
    (* counters live in their own namespace so values stay numeric *)
    Mrmw_incr (Printf.sprintf "ctr%02d" (Clsm_workload.Rng.int rng 10))
  else if r < 96 then Mcompact
  else if r < 98 then Mreopen
  else Mcrash_flushed

let check_agreement ~ctx db model =
  (* full contents *)
  let db_contents = Db.range db in
  let model_contents = M.bindings model in
  Alcotest.(check (list (pair string string)))
    (ctx ^ ": full range = model") model_contents db_contents;
  (* spot gets, including absent keys *)
  List.iteri
    (fun i (k, v) ->
      if i mod 7 = 0 then
        Alcotest.(check (option string)) (ctx ^ ": get " ^ k) (Some v)
          (Db.get db k))
    model_contents;
  Alcotest.(check (option string)) (ctx ^ ": absent") None (Db.get db "zz-absent")

let run_history ~seed ~steps ~key_space () =
  let dir = fresh_dir () in
  let db = ref (Db.open_store (small_opts dir)) in
  let rng = Clsm_workload.Rng.create seed in
  let model = ref M.empty in
  for step = 1 to steps do
    let op = gen_op rng key_space in
    apply_db db op;
    model := apply_model !model op;
    if step mod 100 = 0 then
      check_agreement ~ctx:(Printf.sprintf "seed %d step %d" seed step) !db !model
  done;
  check_agreement ~ctx:(Printf.sprintf "seed %d final" seed) !db !model;
  (* the store must also be structurally healthy at the end *)
  Db.compact_now !db;
  Alcotest.(check (list string)) "verifies" [] (Db.verify_integrity !db);
  check_agreement ~ctx:"after final compaction" !db !model;
  Db.close !db

let snapshot_history () =
  (* Model check for snapshots: capture (map, snapshot) pairs along a
     history; at the end, every snapshot must still read exactly its
     captured map. *)
  let dir = fresh_dir () in
  let db = Db.open_store (small_opts dir) in
  let rng = Clsm_workload.Rng.create 4242 in
  let model = ref M.empty in
  let captured = ref [] in
  for step = 1 to 600 do
    let op = gen_op rng 40 in
    (* reopen/crash invalidate snapshots; keep this history in-process *)
    (match op with
    | Mreopen | Mcrash_flushed -> ()
    | op ->
        apply_db (ref db) op;
        model := apply_model !model op);
    if step mod 60 = 0 then
      captured := (Db.get_snap db, !model) :: !captured
  done;
  List.iteri
    (fun i (snap, snapshot_model) ->
      let got = Db.range ~snapshot:snap db in
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "snapshot %d reads its past" i)
        (M.bindings snapshot_model) got;
      Db.release_snapshot db snap)
    !captured;
  Db.close db

let suites =
  [
    ( "model.db",
      [
        Alcotest.test_case "random history (seed 1)" `Quick
          (run_history ~seed:1 ~steps:700 ~key_space:50);
        Alcotest.test_case "random history (seed 2, small keyspace)" `Quick
          (run_history ~seed:2 ~steps:700 ~key_space:8);
        Alcotest.test_case "random history (seed 3, wide keyspace)" `Quick
          (run_history ~seed:3 ~steps:700 ~key_space:400);
        Alcotest.test_case "snapshots read their past" `Quick snapshot_history;
      ] );
  ]
