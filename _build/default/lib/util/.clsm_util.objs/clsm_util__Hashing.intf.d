lib/util/hashing.mli:
