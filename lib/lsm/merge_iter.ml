(* K-way merge over sub-iterators.

   Two engines share the per-source bookkeeping below: a linear scan for
   small fan-in (an LSM point-merge is a handful of components, where O(k)
   per step beats heap bookkeeping in constant factor) and a binary heap
   with winner caching for wide merges (sharded scans, multi-source
   compactions), where only the sub-iterator that just advanced re-sifts.

   Each source caches its current key ([cur_key]) so a comparison never
   re-enters the underlying iterator's closures, and remembers an
   exhaustion {e bound} — a fact about the source's content learned from a
   failed seek or a next() that ran off the end. A later [seek target]
   whose target the bound proves empty skips the physical re-seek
   entirely; the source is then [live = false] even though the underlying
   iterator may still sit valid at a stale position, so it must never be
   consulted until a real seek refreshes it. Bounds are facts about
   content, not position: they survive rewinds and are only ever replaced
   by facts at least as strong. *)

type bound =
  | No_bound
  | Empty  (** the source has no entries at all *)
  | Ge_empty of string  (** no entries [>= k] (failed seek at [k]) *)
  | Gt_empty of string  (** no entries [> k] (exhausted after key [k]) *)

type sub = {
  it : Iter.t;
  mutable cur_key : string;  (* cached key; meaningful iff [live] *)
  mutable live : bool;
  mutable bound : bound;
}

let bound_proves_none_ge ~cmp bound target =
  match bound with
  | No_bound -> false
  | Empty -> true
  | Ge_empty t0 -> cmp target t0 >= 0
  | Gt_empty k -> cmp target k > 0

let wrap it = { it; cur_key = ""; live = false; bound = No_bound }

let sub_seek_to_first s =
  (match s.bound with
  | Empty -> s.live <- false
  | _ ->
      s.it.Iter.seek_to_first ();
      if s.it.Iter.valid () then begin
        s.cur_key <- s.it.Iter.key ();
        s.live <- true
      end
      else begin
        s.live <- false;
        s.bound <- Empty
      end);
  ()

let sub_seek ~cmp s target =
  if bound_proves_none_ge ~cmp s.bound target then s.live <- false
  else begin
    s.it.Iter.seek target;
    if s.it.Iter.valid () then begin
      s.cur_key <- s.it.Iter.key ();
      s.live <- true
    end
    else begin
      s.live <- false;
      (* Everything >= target is absent; this is at least as strong as
         any bound that let the seek happen. *)
      s.bound <- Ge_empty target
    end
  end

(* Caller guarantees [s.live]. *)
let sub_advance s =
  let k = s.cur_key in
  s.it.Iter.next ();
  if s.it.Iter.valid () then s.cur_key <- s.it.Iter.key ()
  else begin
    s.live <- false;
    s.bound <- Gt_empty k
  end

let merge_linear ~cmp subs =
  let subs = Array.of_list (List.map wrap subs) in
  let n = Array.length subs in
  let cur = ref (-1) in
  (* Invariant: [!cur >= 0] iff some source is live, and then it is the
     smallest (ties to the lowest index = newest component), so [next]
     needs no separate validity re-check. *)
  let recompute () =
    cur := -1;
    for i = n - 1 downto 0 do
      if subs.(i).live
         && (!cur = -1 || cmp subs.(i).cur_key subs.(!cur).cur_key <= 0)
      then cur := i
    done
  in
  {
    Iter.seek_to_first =
      (fun () ->
        Array.iter sub_seek_to_first subs;
        recompute ());
    seek =
      (fun target ->
        Array.iter (fun s -> sub_seek ~cmp s target) subs;
        recompute ());
    valid = (fun () -> !cur >= 0);
    key = (fun () -> subs.(!cur).cur_key);
    value = (fun () -> subs.(!cur).it.Iter.value ());
    next =
      (fun () ->
        if !cur >= 0 then begin
          sub_advance subs.(!cur);
          recompute ()
        end);
  }

let merge_heap ~cmp subs =
  let subs = Array.of_list (List.map wrap subs) in
  let n = Array.length subs in
  let heap = Array.make (max n 1) 0 in
  let m = ref 0 in
  let less a b =
    let c = cmp subs.(a).cur_key subs.(b).cur_key in
    c < 0 || (c = 0 && a < b)
  in
  let swap i j =
    let t = heap.(i) in
    heap.(i) <- heap.(j);
    heap.(j) <- t
  in
  let rec sift_down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let s = ref i in
    if l < !m && less heap.(l) heap.(!s) then s := l;
    if r < !m && less heap.(r) heap.(!s) then s := r;
    if !s <> i then begin
      swap i !s;
      sift_down !s
    end
  in
  let rebuild () =
    m := 0;
    for i = 0 to n - 1 do
      if subs.(i).live then begin
        heap.(!m) <- i;
        incr m
      end
    done;
    for i = (!m / 2) - 1 downto 0 do
      sift_down i
    done
  in
  let root () = subs.(heap.(0)) in
  {
    Iter.seek_to_first =
      (fun () ->
        Array.iter sub_seek_to_first subs;
        rebuild ());
    seek =
      (fun target ->
        Array.iter (fun s -> sub_seek ~cmp s target) subs;
        rebuild ());
    valid = (fun () -> !m > 0);
    key = (fun () -> (root ()).cur_key);
    value = (fun () -> (root ()).it.Iter.value ());
    next =
      (fun () ->
        if !m > 0 then begin
          let s = root () in
          (* Winner caching: only the advanced source re-sifts. *)
          sub_advance s;
          if not s.live then begin
            heap.(0) <- heap.(!m - 1);
            decr m
          end;
          if !m > 0 then sift_down 0
        end);
  }

(* The crossover is empirical: below ~4 sources the linear scan's tight
   loop wins; above it the heap's O(log k) advance does. *)
let heap_threshold = 4

let merge ~cmp subs =
  if List.length subs <= heap_threshold then merge_linear ~cmp subs
  else merge_heap ~cmp subs
