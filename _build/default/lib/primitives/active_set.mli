(** Lock-free set of timestamps with a minimum query — the paper's [Active]
    set of in-flight put timestamps, also reused as the active-snapshot
    registry queried by [beforeMerge].

    Implemented as a fixed array of atomic slots (0 = empty). [add] claims a
    slot with CAS starting from a hashed position; [remove] clears it in
    O(1) via the returned handle; [find_min] scans all slots. Capacity only
    needs to exceed the number of concurrently in-flight operations, so the
    O(capacity) scan is cheap and the structure is non-blocking. *)

type t
type handle

val create : ?capacity:int -> unit -> t
(** Default capacity: 1024 slots. Raises [Invalid_argument] if
    [capacity < 1]. *)

val add : t -> int -> handle
(** [add t ts] publishes timestamp [ts] (must be [> 0]) and returns a handle
    for O(1) removal. Spins with backoff if the set is momentarily full. *)

val remove : t -> handle -> unit
(** Unpublish the timestamp behind [handle]. A handle must be removed
    exactly once. *)

val remove_value : t -> int -> bool
(** [remove_value t ts] removes one occurrence of [ts], returning [false] if
    not present. O(capacity); for tests and the snapshot-release API. *)

val find_min : t -> int option
(** Smallest published timestamp, or [None] if the set is empty. *)

val mem : t -> int -> bool

val values : t -> int list
(** All currently published timestamps, ascending (duplicates preserved).
    Weakly consistent under concurrency, like {!find_min}. *)

val cardinal : t -> int
(** Instantaneous count of published timestamps (O(capacity)). *)
