open Clsm_sim
open Clsm_sim_lsm

(* ---------- Engine ---------- *)

let engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e 3.0 (fun () -> log := "c" :: !log);
  Engine.schedule_at e 1.0 (fun () -> log := "a" :: !log);
  Engine.schedule_at e 2.0 (fun () -> log := "b" :: !log);
  Engine.schedule_at e 1.0 (fun () -> log := "a2" :: !log);
  Engine.run_all e;
  Alcotest.(check (list string)) "time then FIFO order"
    [ "a"; "a2"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e)

let engine_horizon () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule_at e 1.0 (fun () -> incr fired);
  Engine.schedule_at e 5.0 (fun () -> incr fired);
  Engine.run_until e 2.0;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock at horizon" 2.0 (Engine.now e);
  Alcotest.(check int) "pending" 1 (Engine.pending e)

let engine_nested_scheduling () =
  let e = Engine.create () in
  let total = ref 0 in
  let rec tick n () =
    if n > 0 then begin
      incr total;
      Engine.schedule_after e 0.1 (tick (n - 1))
    end
  in
  Engine.schedule_after e 0.0 (tick 100);
  Engine.run_all e;
  Alcotest.(check int) "all ticks" 100 !total;
  Alcotest.(check bool) "time advanced" true (Engine.now e > 9.9)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine is deterministic" ~count:50
    QCheck.(list (pair (int_range 0 100) small_int))
    (fun events ->
      let run () =
        let e = Engine.create () in
        let log = ref [] in
        List.iter
          (fun (t, tag) ->
            Engine.schedule_at e (float_of_int t) (fun () -> log := tag :: !log))
          events;
        Engine.run_all e;
        !log
      in
      run () = run ())

(* ---------- Proc / Resource ---------- *)

let resource_serializes () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:2 in
  let completions = ref [] in
  let job id =
    let open Proc in
    let* () = Resource.use r 1.0 in
    completions := (id, Engine.now e) :: !completions;
    return ()
  in
  List.iter (fun id -> Proc.spawn (job id)) [ 1; 2; 3; 4 ];
  Engine.run_all e;
  (* 2 servers, 4 unit jobs: two waves at t=1 and t=2. *)
  let times = List.rev_map snd !completions in
  Alcotest.(check (list (float 1e-9))) "two waves" [ 1.0; 1.0; 2.0; 2.0 ] times;
  Alcotest.(check (float 1e-9)) "busy time" 4.0 (Resource.busy_time r);
  Alcotest.(check (float 1e-9)) "utilization" 1.0 (Resource.utilization r ~horizon:2.0)

let mutex_fifo () =
  let e = Engine.create () in
  let m = Sim_mutex.create e in
  let order = ref [] in
  let job id =
    let open Proc in
    let* () = Sim_mutex.lock m in
    let* () = Proc.delay e 1.0 in
    order := id :: !order;
    Sim_mutex.unlock m;
    return ()
  in
  List.iter (fun id -> Proc.spawn (job id)) [ 1; 2; 3 ];
  Engine.run_all e;
  Alcotest.(check (list int)) "FIFO critical sections" [ 1; 2; 3 ]
    (List.rev !order);
  Alcotest.(check int) "acquisitions" 3 (Sim_mutex.acquisitions m);
  Alcotest.(check bool) "waiting time accrued" true (Sim_mutex.total_wait m > 2.9)

let shared_lock_semantics () =
  let e = Engine.create () in
  let l = Sim_shared_lock.create e in
  let log = ref [] in
  let reader id =
    let open Proc in
    let* () = Sim_shared_lock.lock_shared l in
    let* () = Proc.delay e 1.0 in
    log := (id, Engine.now e) :: !log;
    Sim_shared_lock.unlock_shared l;
    return ()
  in
  let writer () =
    let open Proc in
    let* () = Proc.delay e 0.5 in
    let* () = Sim_shared_lock.lock_exclusive l in
    let* () = Proc.delay e 1.0 in
    log := (99, Engine.now e) :: !log;
    Sim_shared_lock.unlock_exclusive l;
    return ()
  in
  Proc.spawn (reader 1);
  Proc.spawn (reader 2);
  Proc.spawn (writer ());
  (* A late reader must wait for the queued writer (writer preference). *)
  Engine.schedule_after e 0.6 (fun () -> Proc.spawn (reader 3));
  Engine.run_all e;
  let completions = List.rev !log in
  (match completions with
  | (a, t1) :: (b, t2) :: (w, t3) :: (c, t4) :: [] ->
      Alcotest.(check bool) "both shared finish together" true
        (t1 = 1.0 && t2 = 1.0 && a <> b);
      Alcotest.(check int) "writer next" 99 w;
      Alcotest.(check (float 1e-9)) "writer after readers drain" 2.0 t3;
      Alcotest.(check int) "late reader last" 3 c;
      Alcotest.(check (float 1e-9)) "reader after writer" 3.0 t4
  | _ -> Alcotest.fail "unexpected completion count");
  Alcotest.(check bool) "shared wait accounted" true
    (Sim_shared_lock.shared_wait_time l > 1.0)

(* ---------- Sim models: discipline-level sanity ---------- *)

let run_sim ~system ~threads ?(spec = Clsm_workload.Workload_spec.write_only ~space:1_000_000)
    () =
  Experiment.run
    (Experiment.config ~duration:0.1 ~system ~threads spec)

let single_writer_does_not_scale () =
  let t1 = (run_sim ~system:System.Leveldb ~threads:1 ()).Experiment.throughput in
  let t8 = (run_sim ~system:System.Leveldb ~threads:8 ()).Experiment.throughput in
  Alcotest.(check bool)
    (Printf.sprintf "LevelDB writes flat: 1t=%.0f 8t=%.0f" t1 t8)
    true
    (t8 < t1 *. 1.4)

let clsm_writes_scale () =
  let t1 = (run_sim ~system:System.Clsm ~threads:1 ()).Experiment.throughput in
  let t8 = (run_sim ~system:System.Clsm ~threads:8 ()).Experiment.throughput in
  Alcotest.(check bool)
    (Printf.sprintf "cLSM writes scale: 1t=%.0f 8t=%.0f" t1 t8)
    true
    (t8 > t1 *. 2.0)

let clsm_beats_leveldb_on_reads_at_scale () =
  let spec = Clsm_workload.Workload_spec.read_only_skewed ~space:1_000_000 in
  let clsm = (run_sim ~system:System.Clsm ~threads:16 ~spec ()).Experiment.throughput in
  let ldb = (run_sim ~system:System.Leveldb ~threads:16 ~spec ()).Experiment.throughput in
  Alcotest.(check bool)
    (Printf.sprintf "cLSM %.0f > LevelDB %.0f at 16 threads" clsm ldb)
    true (clsm > ldb *. 1.3)

let reads_scale_beyond_hw_threads () =
  let spec = Clsm_workload.Workload_spec.read_only_skewed ~space:1_000_000 in
  let t16 = (run_sim ~system:System.Clsm ~threads:16 ~spec ()).Experiment.throughput in
  let t64 = (run_sim ~system:System.Clsm ~threads:64 ~spec ()).Experiment.throughput in
  Alcotest.(check bool)
    (Printf.sprintf "64 threads (%.0f) >= 16 threads (%.0f)" t64 t16)
    true
    (t64 >= t16 *. 0.95)

let rmw_gap_matches_paper () =
  let spec = Clsm_workload.Workload_spec.rmw_only ~space:1_000_000 in
  let clsm = (run_sim ~system:System.Clsm ~threads:8 ~spec ()).Experiment.throughput in
  let striped =
    (run_sim ~system:System.Striped_rmw ~threads:8 ~spec ()).Experiment.throughput
  in
  Alcotest.(check bool)
    (Printf.sprintf "cLSM RMW %.0f >= 1.8x striped %.0f" clsm striped)
    true
    (clsm > striped *. 1.8)

let simulation_is_deterministic () =
  let a = run_sim ~system:System.Clsm ~threads:4 () in
  let b = run_sim ~system:System.Clsm ~threads:4 () in
  Alcotest.(check int) "same ops" a.Experiment.ops b.Experiment.ops;
  Alcotest.(check (float 1e-9)) "same p90" a.Experiment.p90 b.Experiment.p90

let suites =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "event ordering" `Quick engine_ordering;
        Alcotest.test_case "horizon" `Quick engine_horizon;
        Alcotest.test_case "nested scheduling" `Quick engine_nested_scheduling;
      ] );
    ( "sim.engine.props",
      List.map QCheck_alcotest.to_alcotest [ prop_engine_deterministic ] );
    ( "sim.sync",
      [
        Alcotest.test_case "resource FIFO waves" `Quick resource_serializes;
        Alcotest.test_case "mutex FIFO" `Quick mutex_fifo;
        Alcotest.test_case "shared lock + writer preference" `Quick
          shared_lock_semantics;
      ] );
    ( "sim.models",
      [
        Alcotest.test_case "single-writer flat" `Quick single_writer_does_not_scale;
        Alcotest.test_case "clsm writes scale" `Quick clsm_writes_scale;
        Alcotest.test_case "clsm read advantage at 16" `Quick
          clsm_beats_leveldb_on_reads_at_scale;
        Alcotest.test_case "reads scale past HW threads" `Quick
          reads_scale_beyond_hw_threads;
        Alcotest.test_case "rmw gap" `Quick rmw_gap_matches_paper;
        Alcotest.test_case "deterministic" `Quick simulation_is_deterministic;
      ] );
  ]
