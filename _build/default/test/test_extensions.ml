(* Tests for the substrate extensions: block compression, trace
   record/replay, YCSB workloads, multi_get, compaction round-robin. *)

open Clsm_workload

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_test_ext_%d_%d" (Unix.getpid ()) !counter)

(* ---------- Simple_compress ---------- *)

let compress_roundtrip_cases () =
  let module C = Clsm_util.Simple_compress in
  List.iter
    (fun s ->
      Alcotest.(check string) "roundtrip" s (C.decompress (C.compress s)))
    [
      "";
      "a";
      "abc";
      String.make 10_000 'x';
      "abcabcabcabcabcabcabcabc";
      String.concat "" (List.init 500 (fun i -> Printf.sprintf "key%06d=value;" i));
      String.init 256 Char.chr;
    ]

let compress_shrinks_redundancy () =
  let module C = Clsm_util.Simple_compress in
  let repetitive = String.concat "" (List.init 200 (fun _ -> "hello world ")) in
  Alcotest.(check bool) "repetitive shrinks" true
    (String.length (C.compress repetitive) < String.length repetitive / 4);
  (* overlapping match (run-length style) *)
  let rle = String.make 5000 'z' in
  Alcotest.(check bool) "rle shrinks hard" true
    (String.length (C.compress rle) < 400)

let compress_rejects_garbage () =
  let module C = Clsm_util.Simple_compress in
  (match C.decompress "\x83\x10" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "truncated match accepted");
  (match C.decompress "\x83\xff\xff" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "offset beyond output accepted");
  match C.decompress "\x05ab" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "truncated literal run accepted"

let prop_compress_roundtrip =
  QCheck.Test.make ~name:"lzss roundtrip (random)" ~count:300
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun s ->
      let module C = Clsm_util.Simple_compress in
      C.decompress (C.compress s) = s)

let prop_compress_roundtrip_repetitive =
  QCheck.Test.make ~name:"lzss roundtrip (repetitive)" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 20)) (int_range 1 300))
    (fun (unit_str, reps) ->
      let module C = Clsm_util.Simple_compress in
      let s = String.concat "" (List.init reps (fun _ -> unit_str)) in
      C.decompress (C.compress s) = s)

let compressed_table_roundtrip () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let module T = Clsm_sstable.Table in
  let module TB = Clsm_sstable.Table_builder in
  let pairs =
    List.init 2000 (fun i ->
        (Printf.sprintf "key%06d" i, Printf.sprintf "value-%d-%s" i (String.make 40 'p')))
  in
  let build ~compress name =
    let path = Filename.concat dir name in
    let b =
      TB.create ~block_size:1024 ~compress ~cmp:Clsm_sstable.Comparator.bytewise
        ~path ()
    in
    List.iter (fun (k, v) -> TB.add b ~key:k ~value:v) pairs;
    ignore (TB.finish b);
    path
  in
  let plain = build ~compress:false "plain.sst" in
  let packed = build ~compress:true "packed.sst" in
  Alcotest.(check bool) "compressed file smaller" true
    ((Unix.stat packed).Unix.st_size < (Unix.stat plain).Unix.st_size * 3 / 4);
  let t = T.open_file ~cmp:Clsm_sstable.Comparator.bytewise packed in
  Alcotest.(check bool) "contents identical" true (T.to_list t = pairs);
  (match T.verify t with
  | Ok n -> Alcotest.(check int) "verify count" 2000 n
  | Error e -> Alcotest.fail e);
  Alcotest.(check (option (pair string string)))
    "find_last_le works on compressed blocks"
    (Some (List.nth pairs 999))
    (T.find_last_le t (fst (List.nth pairs 999)));
  T.close t

let compressed_store_end_to_end () =
  let dir = fresh_dir () in
  let base = Clsm_core.Options.default ~dir in
  let opts =
    {
      base with
      Clsm_core.Options.memtable_bytes = 16 * 1024;
      lsm =
        {
          base.Clsm_core.Options.lsm with
          Clsm_lsm.Lsm_config.compress = true;
          block_size = 1024;
          target_file_size = 16 * 1024;
          level1_max_bytes = 64 * 1024;
        };
    }
  in
  let db = Clsm_core.Db.open_store opts in
  for i = 0 to 999 do
    Clsm_core.Db.put db
      ~key:(Printf.sprintf "k%05d" i)
      ~value:(String.make 100 (Char.chr (65 + (i mod 26))))
  done;
  Clsm_core.Db.compact_now db;
  Alcotest.(check (list string)) "verifies" [] (Clsm_core.Db.verify_integrity db);
  let missing = ref 0 in
  for i = 0 to 999 do
    if Clsm_core.Db.get db (Printf.sprintf "k%05d" i) = None then incr missing
  done;
  Alcotest.(check int) "all readable" 0 !missing;
  Clsm_core.Db.close db;
  (* recovery over compressed tables *)
  let db = Clsm_core.Db.open_store opts in
  Alcotest.(check bool) "recovered value intact" true
    (Clsm_core.Db.get db "k00042" = Some (String.make 100 (Char.chr (65 + 42 mod 26))));
  Clsm_core.Db.close db

(* ---------- Trace ---------- *)

let trace_line_roundtrip () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "line roundtrip" true
        (Trace.op_of_line (Trace.op_to_line op) = Some op))
    [
      Trace.Get "key1";
      Trace.Put ("key2", 256);
      Trace.Delete "key3";
      Trace.Scan ("key4", 17);
      Trace.Rmw ("key5", 1024);
    ];
  Alcotest.(check bool) "comment skipped" true (Trace.op_of_line "# hi" = None);
  Alcotest.(check bool) "blank skipped" true (Trace.op_of_line "   " = None);
  match Trace.op_of_line "X bogus" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed line accepted"

let trace_synthesize_and_stats () =
  let file = Filename.concat (Filename.get_temp_dir_name ()) "clsm_trace_test" in
  let spec = Workload_spec.production ~read_ratio:0.9 ~space:5_000 in
  Trace.synthesize ~spec ~count:20_000 file;
  let ops = Trace.load file in
  let s = Trace.stats_of ops in
  Alcotest.(check int) "count" 20_000 s.Trace.total;
  let read_frac = float_of_int s.Trace.reads /. float_of_int s.Trace.total in
  Alcotest.(check bool)
    (Printf.sprintf "read ratio %.2f ~ 0.9" read_frac)
    true
    (read_frac > 0.87 && read_frac < 0.93);
  Alcotest.(check bool) "heavy tail locality" true (s.Trace.top_decile_share > 0.6);
  Alcotest.(check bool) "some deletes sprinkled" true (s.Trace.deletes > 0);
  Sys.remove file

let trace_replay_end_to_end () =
  let file = Filename.concat (Filename.get_temp_dir_name ()) "clsm_trace_replay" in
  let spec =
    Workload_spec.make ~name:"t" ~read:0.5 ~write:0.5 ~key_len:8 ~value_len:64
      (Clsm_workload.Key_dist.uniform 500)
  in
  Trace.synthesize ~spec ~count:5_000 file;
  let dir = fresh_dir () in
  let store =
    Store_ops.open_clsm
      { (Clsm_core.Options.default ~dir) with Clsm_core.Options.memtable_bytes = 1 lsl 20 }
  in
  let r = Trace.replay store (Trace.load file) in
  Alcotest.(check int) "all ops replayed" 5_000 r.Driver.ops;
  Alcotest.(check bool) "throughput positive" true (r.Driver.throughput > 0.0);
  store.Store_ops.close ();
  Sys.remove file

(* ---------- YCSB ---------- *)

let ycsb_specs_shape () =
  let space = 1_000 in
  let a = Ycsb.workload_a ~space in
  Alcotest.(check bool) "A is 50/50" true
    (abs_float (a.Workload_spec.read_ratio -. 0.5) < 0.001
    && abs_float (a.Workload_spec.write_ratio -. 0.5) < 0.001);
  let c = Ycsb.workload_c ~space in
  Alcotest.(check bool) "C is read-only" true
    (c.Workload_spec.read_ratio = 1.0);
  let e = Ycsb.workload_e ~space in
  Alcotest.(check bool) "E is scan-heavy" true (e.Workload_spec.scan_ratio > 0.9);
  let f = Ycsb.workload_f ~space in
  Alcotest.(check bool) "F has RMW" true (f.Workload_spec.rmw_ratio > 0.49);
  Alcotest.(check int) "six workloads" 6 (List.length (Ycsb.all ~space))

let ycsb_a_runs_against_store () =
  let dir = fresh_dir () in
  let store =
    Store_ops.open_clsm
      { (Clsm_core.Options.default ~dir) with Clsm_core.Options.memtable_bytes = 1 lsl 20 }
  in
  let spec = Ycsb.workload_a ~space:500 in
  Driver.preload store spec ~count:500;
  let r = Driver.run ~threads:2 ~ops_per_thread:1_000 store spec in
  Alcotest.(check int) "ops" 2_000 r.Driver.ops;
  store.Store_ops.close ()

(* ---------- multi_get ---------- *)

let multi_get_consistent () =
  let dir = fresh_dir () in
  let db =
    Clsm_core.Db.open_store
      { (Clsm_core.Options.default ~dir) with Clsm_core.Options.memtable_bytes = 1 lsl 20 }
  in
  Clsm_core.Db.put db ~key:"a" ~value:"1";
  Clsm_core.Db.put db ~key:"b" ~value:"2";
  Alcotest.(check (list (pair string (option string))))
    "values and misses"
    [ ("a", Some "1"); ("missing", None); ("b", Some "2") ]
    (Clsm_core.Db.multi_get db [ "a"; "missing"; "b" ]);
  (* concurrent writers can't tear a multi_get *)
  let stop = Atomic.make false in
  let writer () =
    let i = ref 0 in
    while not (Atomic.get stop) do
      incr i;
      Clsm_core.Db.put db ~key:"x" ~value:(string_of_int !i);
      Clsm_core.Db.put db ~key:"y" ~value:(string_of_int !i)
    done;
    0
  in
  let auditor () =
    let bad = ref 0 in
    for _ = 1 to 500 do
      match Clsm_core.Db.multi_get db [ "x"; "y" ] with
      | [ (_, Some x); (_, Some y) ] when int_of_string y > int_of_string x ->
          incr bad
      | [ (_, None); (_, Some _) ] -> incr bad
      | _ -> ()
    done;
    Atomic.set stop true;
    !bad
  in
  let results = List.map Domain.spawn [ writer; auditor ] |> List.map Domain.join in
  Alcotest.(check int) "never torn" 0 (List.nth results 1);
  Clsm_core.Db.close db

(* ---------- compaction round-robin pointer ---------- *)

let compaction_pointer_cycles () =
  let open Clsm_lsm in
  (* Three disjoint L1 files over budget: successive picks with an evolving
     pointer must rotate through them rather than hammering the first. *)
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let make_file number lo hi =
    let b =
      Clsm_sstable.Table_builder.create ~cmp:Internal_key.comparator
        ~path:(Table_file.table_path ~dir number)
        ()
    in
    Clsm_sstable.Table_builder.add b ~key:(Internal_key.make lo 1)
      ~value:(Entry.encode (Entry.Value (String.make 600 'x')));
    Clsm_sstable.Table_builder.add b ~key:(Internal_key.make hi 2)
      ~value:(Entry.encode (Entry.Value (String.make 600 'x')));
    ignore (Clsm_sstable.Table_builder.finish b);
    Clsm_primitives.Refcounted.create ~release:Table_file.release
      (Table_file.open_number ~dir number)
  in
  let f1 = make_file 1 "a" "b" in
  let f2 = make_file 2 "c" "d" in
  let f3 = make_file 3 "e" "f" in
  let levels = Array.make 3 [] in
  levels.(0) <- [ f1; f2; f3 ];
  let v = Version.create ~l0:[] ~levels in
  let cfg = { Lsm_config.default with Lsm_config.level1_max_bytes = 1 } in
  let pointers = Array.make 3 "" in
  let picked = ref [] in
  for _ = 1 to 4 do
    match Compaction.pick ~cfg ~level_pointers:pointers v with
    | Some task ->
        let tf =
          Clsm_primitives.Refcounted.value (List.hd task.Compaction.inputs_lo)
        in
        picked := tf.Table_file.number :: !picked;
        pointers.(0) <- tf.Table_file.largest
    | None -> Alcotest.fail "expected a task"
  done;
  Alcotest.(check (list int)) "round robin then wrap" [ 1; 2; 3; 1 ]
    (List.rev !picked);
  Version.release v;
  List.iter Clsm_primitives.Refcounted.retire [ f1; f2; f3 ]

let suites =
  [
    ( "ext.compress",
      [
        Alcotest.test_case "roundtrip cases" `Quick compress_roundtrip_cases;
        Alcotest.test_case "shrinks redundancy" `Quick compress_shrinks_redundancy;
        Alcotest.test_case "rejects garbage" `Quick compress_rejects_garbage;
        Alcotest.test_case "compressed table" `Quick compressed_table_roundtrip;
        Alcotest.test_case "compressed store e2e" `Quick
          compressed_store_end_to_end;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_compress_roundtrip; prop_compress_roundtrip_repetitive ] );
    ( "ext.trace",
      [
        Alcotest.test_case "line roundtrip" `Quick trace_line_roundtrip;
        Alcotest.test_case "synthesize + stats" `Quick trace_synthesize_and_stats;
        Alcotest.test_case "replay end to end" `Quick trace_replay_end_to_end;
      ] );
    ( "ext.ycsb",
      [
        Alcotest.test_case "spec shapes" `Quick ycsb_specs_shape;
        Alcotest.test_case "A runs against store" `Quick ycsb_a_runs_against_store;
      ] );
    ( "ext.multi_get",
      [ Alcotest.test_case "consistent" `Quick multi_get_consistent ] );
    ( "ext.compaction_pointer",
      [ Alcotest.test_case "cycles through level" `Quick compaction_pointer_cycles ] );
  ]
