(* Table-driven CRC-32C, reflected polynomial 0x82F63B78. *)

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      if !c land 1 = 1 then c := 0x82F63B78 lxor (!c lsr 1) else c := !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let sub ?(init = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32c.sub";
  let crc = ref (init lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code s.[i]) land 0xff) lxor (!crc lsr 8)
  done;
  !crc lxor 0xffffffff

let string ?init s = sub ?init s ~pos:0 ~len:(String.length s)

let mask_delta = 0xa282ead8

let mask crc =
  let rotated = ((crc lsr 15) lor (crc lsl 17)) land 0xffffffff in
  (rotated + mask_delta) land 0xffffffff

let unmask masked =
  let rotated = (masked - mask_delta) land 0xffffffff in
  ((rotated lsr 17) lor (rotated lsl 15)) land 0xffffffff
