type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable generation : int;
  mutable waiting : int;
}

let create () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    generation = 0;
    waiting = 0;
  }

let current t = Mutex.protect t.mutex (fun () -> t.generation)

let signal t =
  Mutex.protect t.mutex (fun () ->
      t.generation <- t.generation + 1;
      Condition.broadcast t.cond)

let wait t ~seen =
  Mutex.protect t.mutex (fun () ->
      t.waiting <- t.waiting + 1;
      while t.generation = seen do
        Condition.wait t.cond t.mutex
      done;
      t.waiting <- t.waiting - 1;
      t.generation)

let waiters t = Mutex.protect t.mutex (fun () -> t.waiting)
