(** Non-cryptographic string hashes for Bloom filters, cache sharding and
    lock striping. *)

val hash : ?seed:int -> string -> int
(** LevelDB-style Murmur-like hash of a string to a 32-bit value. *)

val hash64 : ?seed:int -> string -> int
(** 63-bit hash obtained by mixing two 32-bit hashes; suitable for
    partitioning across many shards. *)

val mix64 : int -> int
(** A splitmix64-style finalizer over 63-bit ints (top bit dropped).
    Deterministic; used for synthetic key generation. *)
