lib/sstable/table.mli: Block Cache Comparator Table_format
