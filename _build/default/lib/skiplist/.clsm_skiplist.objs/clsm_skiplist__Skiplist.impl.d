lib/skiplist/skiplist.ml: Array Atomic Clsm_util List
