type op =
  | Get of string
  | Put of string * int
  | Delete of string
  | Scan of string * int
  | Rmw of string * int

(* Keys are printable in our generators; escape defensively anyway. *)
let escape = String.map (fun c -> if c = ' ' || c = '\n' then '_' else c)

let op_to_line = function
  | Get k -> Printf.sprintf "G %s" (escape k)
  | Put (k, n) -> Printf.sprintf "P %s %d" (escape k) n
  | Delete k -> Printf.sprintf "D %s" (escape k)
  | Scan (k, n) -> Printf.sprintf "S %s %d" (escape k) n
  | Rmw (k, n) -> Printf.sprintf "M %s %d" (escape k) n

let op_of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char ' ' line with
    | [ "G"; k ] -> Some (Get k)
    | [ "P"; k; n ] -> Some (Put (k, int_of_string n))
    | [ "D"; k ] -> Some (Delete k)
    | [ "S"; k; n ] -> Some (Scan (k, int_of_string n))
    | [ "M"; k; n ] -> Some (Rmw (k, int_of_string n))
    | _ -> failwith ("Trace: malformed line: " ^ line)

let synthesize ?(seed = 11) ~spec ~count path =
  let rng = Rng.create seed in
  let oc = open_out path in
  output_string oc
    (Printf.sprintf "# synthesized trace: %s, %d ops\n"
       spec.Workload_spec.name count);
  for _ = 1 to count do
    let key = Workload_spec.next_key spec rng in
    let op =
      match Workload_spec.next_op spec rng with
      | Workload_spec.Read -> Get key
      | Workload_spec.Write ->
          (* sprinkle occasional deletes into write traffic, like real
             serving logs *)
          if Rng.bool rng 0.02 then Delete key
          else Put (key, spec.Workload_spec.value_len)
      | Workload_spec.Scan -> Scan (key, Workload_spec.scan_len spec rng)
      | Workload_spec.Rmw -> Rmw (key, spec.Workload_spec.value_len)
    in
    output_string oc (op_to_line op);
    output_char oc '\n'
  done;
  close_out oc

let load path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> (
        match op_of_line line with
        | Some op -> go (op :: acc)
        | None -> go acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

type stats = {
  total : int;
  reads : int;
  writes : int;
  deletes : int;
  scans : int;
  rmws : int;
  distinct_keys : int;
  top_decile_share : float;
}

let key_of = function
  | Get k | Put (k, _) | Delete k | Scan (k, _) | Rmw (k, _) -> k

let stats_of ops =
  let counts = Hashtbl.create 1024 in
  let reads = ref 0
  and writes = ref 0
  and deletes = ref 0
  and scans = ref 0
  and rmws = ref 0 in
  List.iter
    (fun op ->
      (match op with
      | Get _ -> incr reads
      | Put _ -> incr writes
      | Delete _ -> incr deletes
      | Scan _ -> incr scans
      | Rmw _ -> incr rmws);
      let k = key_of op in
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    ops;
  let total = List.length ops in
  let freqs =
    Hashtbl.fold (fun _ c acc -> c :: acc) counts []
    |> List.sort (fun a b -> compare b a)
  in
  let distinct = List.length freqs in
  let top_n = max 1 (distinct / 10) in
  let rec take n = function
    | c :: rest when n > 0 -> c + take (n - 1) rest
    | _ -> 0
  in
  {
    total;
    reads = !reads;
    writes = !writes;
    deletes = !deletes;
    scans = !scans;
    rmws = !rmws;
    distinct_keys = distinct;
    top_decile_share =
      (if total = 0 then 0.0
       else float_of_int (take top_n freqs) /. float_of_int total);
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d ops: %d reads, %d writes, %d deletes, %d scans, %d rmws; %d distinct \
     keys; top 10%% of keys draw %.0f%% of references"
    s.total s.reads s.writes s.deletes s.scans s.rmws s.distinct_keys
    (100.0 *. s.top_decile_share)

let replay ?(value_seed = 1234) (store : Store_ops.t) ops =
  let hist = Histogram.create () in
  let keys_touched = ref 0 in
  let value_for key len =
    let rng = Rng.create (value_seed lxor Clsm_util.Hashing.hash key) in
    String.init len (fun _ -> Char.chr (0x20 + Rng.int rng 0x5f))
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun op ->
      let start = Unix.gettimeofday () in
      (match op with
      | Get k ->
          ignore (store.Store_ops.get k);
          incr keys_touched
      | Put (k, n) ->
          store.Store_ops.put ~key:k ~value:(value_for k n);
          incr keys_touched
      | Delete k ->
          store.Store_ops.delete ~key:k;
          incr keys_touched
      | Scan (k, n) ->
          let result = store.Store_ops.scan ~start:k ~limit:n in
          keys_touched := !keys_touched + List.length result
      | Rmw (k, n) ->
          ignore (store.Store_ops.put_if_absent ~key:k ~value:(value_for k n));
          incr keys_touched);
      Histogram.record hist (Unix.gettimeofday () -. start))
    ops;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = List.length ops in
  {
    Driver.ops = total;
    keys_touched = !keys_touched;
    elapsed;
    throughput = float_of_int total /. elapsed;
    keys_per_sec = float_of_int !keys_touched /. elapsed;
    p50 = Histogram.percentile hist 50.0;
    p90 = Histogram.percentile hist 90.0;
    p99 = Histogram.percentile hist 99.0;
    mean_latency = Histogram.mean hist;
  }
