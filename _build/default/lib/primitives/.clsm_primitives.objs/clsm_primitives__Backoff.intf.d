lib/primitives/backoff.mli:
