(** A numbered, immutable on-disk table plus its metadata, shared between
    successive versions of the disk component through reference counting.
    When the last version referencing an obsolete file releases it, the
    reader is closed and the file deleted. *)

exception
  Corruption of {
    number : int;  (** table file number — the quarantine unit *)
    path : string;
    detail : string;  (** which block and how it failed *)
  }
(** Typed classification of a silent-corruption read failure (checksum or
    structural decode), carrying enough to quarantine the file. Distinct
    from {!Clsm_env.Env.Error} (transient IO) and {!Clsm_env.Env.Crashed}
    (hard stop). *)

type t = {
  number : int;
  table : Clsm_sstable.Table.t;
  size : int;
  smallest : string; (** smallest internal key, "" when empty *)
  largest : string;
  obsolete : bool Atomic.t;
  env : Clsm_env.Env.t; (** the environment the file was opened through *)
}

val table_path : dir:string -> int -> string
val wal_path : dir:string -> int -> string
val manifest_path : dir:string -> string

val open_number :
  ?cache:Clsm_sstable.Block.t Clsm_sstable.Cache.t ->
  ?env:Clsm_env.Env.t ->
  dir:string ->
  int ->
  t
(** Open table file [number] in [dir] with the internal-key comparator. *)

val typed_corruption : t -> string -> exn
(** The {!Corruption} exception for this file with the given detail. *)

val with_table : t -> (Clsm_sstable.Table.t -> 'a) -> 'a
(** Run a read against the table, translating
    {!Clsm_sstable.Table.Corrupt} into {!Corruption} naming this file. *)

val mark_obsolete : t -> unit
(** The file will be deleted once its last reference is dropped. *)

val release : t -> unit
(** Close the reader and delete the file if marked obsolete. Used as the
    [Refcounted] release hook. *)
