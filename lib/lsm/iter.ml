type t = {
  seek_to_first : unit -> unit;
  seek : string -> unit;
  valid : unit -> bool;
  key : unit -> string;
  value : unit -> string;
  next : unit -> unit;
}

let of_table table =
  let module T = Clsm_sstable.Table in
  let it = T.Iter.make table in
  {
    seek_to_first = (fun () -> T.Iter.seek_to_first it);
    seek = (fun target -> T.Iter.seek it target);
    valid = (fun () -> T.Iter.valid it);
    key = (fun () -> T.Iter.key it);
    value = (fun () -> T.Iter.value it);
    next = (fun () -> T.Iter.next it);
  }

let of_array arr =
  let pos = ref (Array.length arr) in
  let valid () = !pos >= 0 && !pos < Array.length arr in
  {
    seek_to_first = (fun () -> pos := 0);
    seek =
      (fun target ->
        (* First index with key >= target; the array is sorted under the
           caller's comparator, which must agree with String.compare only
           if the caller built it that way — we use a linear scan to stay
           comparator-agnostic. Arrays are test fixtures; O(n) is fine. *)
        let n = Array.length arr in
        let rec go i =
          if i >= n then pos := n
          else if fst arr.(i) >= target then pos := i
          else go (i + 1)
        in
        go 0);
    valid;
    key = (fun () -> fst arr.(!pos));
    value = (fun () -> snd arr.(!pos));
    next = (fun () -> if valid () then incr pos);
  }

let of_sorted_list ~cmp entries =
  let arr = Array.of_list entries in
  let pos = ref (Array.length arr) in
  let valid () = !pos >= 0 && !pos < Array.length arr in
  {
    seek_to_first = (fun () -> pos := 0);
    seek =
      (fun target ->
        let n = Array.length arr in
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if cmp (fst arr.(mid)) target < 0 then lo := mid + 1 else hi := mid
        done;
        pos := !lo);
    valid;
    key = (fun () -> fst arr.(!pos));
    value = (fun () -> snd arr.(!pos));
    next = (fun () -> if valid () then incr pos);
  }

let concat subs =
  let subs = Array.of_list subs in
  let n = Array.length subs in
  let cur = ref n in
  (* Position [cur] on the first source at or after index [i] that is
     valid, rewinding each candidate to its first entry. *)
  let rec settle_from i =
    if i >= n then cur := n
    else begin
      subs.(i).seek_to_first ();
      if subs.(i).valid () then cur := i else settle_from (i + 1)
    end
  in
  let valid () = !cur < n && subs.(!cur).valid () in
  {
    seek_to_first = (fun () -> settle_from 0);
    seek =
      (fun target ->
        let rec go i =
          if i >= n then cur := n
          else begin
            subs.(i).seek target;
            if subs.(i).valid () then cur := i else go (i + 1)
          end
        in
        go 0);
    valid;
    key = (fun () -> subs.(!cur).key ());
    value = (fun () -> subs.(!cur).value ());
    next =
      (fun () ->
        if valid () then begin
          subs.(!cur).next ();
          if not (subs.(!cur).valid ()) then settle_from (!cur + 1)
        end);
  }

let clamp ?lo ?hi ~cmp it =
  (* Forward-only view of [lo, hi): entries below [lo] are skipped by
     seeking, iteration reports invalid at the first key >= [hi]. The
     underlying iterator may sit past [hi]; it is never advanced once the
     view is invalid, so several clamped views over fresh iterators of
     the same sources are independent. *)
  let below_hi () =
    match hi with None -> true | Some h -> cmp (it.key ()) h < 0
  in
  let valid () = it.valid () && below_hi () in
  let seek target =
    match lo with
    | Some l when cmp target l < 0 -> it.seek l
    | Some _ | None -> it.seek target
  in
  {
    seek_to_first =
      (fun () ->
        match lo with None -> it.seek_to_first () | Some l -> it.seek l);
    seek;
    valid;
    key = it.key;
    value = it.value;
    next = (fun () -> if valid () then it.next ());
  }

let fold f it acc =
  it.seek_to_first ();
  let rec go acc =
    if it.valid () then begin
      let k = it.key () and v = it.value () in
      it.next ();
      go (f k v acc)
    end
    else acc
  in
  go acc

let to_list it = List.rev (fold (fun k v acc -> (k, v) :: acc) it [])
