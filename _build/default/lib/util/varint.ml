exception Corrupt of string

let max_length = 9

let check_non_negative v =
  if v < 0 then invalid_arg "Varint: negative value"

let encoded_length v =
  check_non_negative v;
  let rec loop n v = if v < 0x80 then n else loop (n + 1) (v lsr 7) in
  loop 1 v

let write buf v =
  check_non_negative v;
  let rec loop v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (v land 0x7f lor 0x80));
      loop (v lsr 7)
    end
  in
  loop v

let put b ~pos v =
  check_non_negative v;
  let rec loop pos v =
    if v < 0x80 then begin
      Bytes.set b pos (Char.chr v);
      pos + 1
    end else begin
      Bytes.set b pos (Char.chr (v land 0x7f lor 0x80));
      loop (pos + 1) (v lsr 7)
    end
  in
  loop pos v

let read s ~pos =
  let len = String.length s in
  let rec loop pos shift acc count =
    if count > max_length then raise (Corrupt "varint too long");
    if pos >= len then raise (Corrupt "varint truncated");
    let byte = Char.code s.[pos] in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte < 0x80 then begin
      if acc < 0 then raise (Corrupt "varint overflow");
      (acc, pos + 1)
    end
    else loop (pos + 1) (shift + 7) acc (count + 1)
  in
  loop pos 0 0 1
