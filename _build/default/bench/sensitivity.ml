(* Sensitivity analysis: the simulated figures rest on calibrated service
   times; this sweep perturbs each load-bearing constant by 2x in both
   directions and recomputes the paper's headline comparisons. If a
   conclusion (who wins, by roughly how much) survives every perturbation,
   it follows from the synchronization disciplines rather than from the
   calibration. *)

open Clsm_sim_lsm
open Clsm_workload

let line fmt = Printf.printf (fmt ^^ "\n%!")

type headline = {
  write_ratio_at_8 : float; (* cLSM / best single-writer-family, Fig 5a *)
  write_scaling : float; (* cLSM 8-thread / 1-thread, Fig 5a *)
  read_ratio_at_16 : float; (* cLSM / LevelDB, Fig 6a *)
  rmw_ratio_at_8 : float; (* cLSM / lock striping, Fig 9 *)
}

let run_headline costs =
  let space = 10_000_000 in
  let point ~system ~threads spec =
    (Experiment.run
       (Experiment.config ~costs ~duration:0.2 ~system ~threads spec))
      .Experiment.throughput
  in
  let writes = Workload_spec.write_only ~space in
  let reads = Workload_spec.read_only_skewed ~space in
  let rmws = Workload_spec.rmw_only ~space in
  let clsm_w8 = point ~system:System.Clsm ~threads:8 writes in
  let clsm_w1 = point ~system:System.Clsm ~threads:1 writes in
  let hyper_w8 = point ~system:System.Hyperleveldb ~threads:8 writes in
  let leveldb_w8 = point ~system:System.Leveldb ~threads:8 writes in
  {
    write_ratio_at_8 = clsm_w8 /. Float.max hyper_w8 leveldb_w8;
    write_scaling = clsm_w8 /. clsm_w1;
    read_ratio_at_16 =
      point ~system:System.Clsm ~threads:16 reads
      /. point ~system:System.Leveldb ~threads:16 reads;
    rmw_ratio_at_8 =
      point ~system:System.Clsm ~threads:8 rmws
      /. point ~system:System.Striped_rmw ~threads:8 rmws;
  }

let perturbations =
  [
    ("baseline", Fun.id);
    ("mem_write x2", fun c -> { c with Costs.mem_write = c.Costs.mem_write *. 2. });
    ("mem_write /2", fun c -> { c with Costs.mem_write = c.Costs.mem_write /. 2. });
    ("mem_read x2", fun c -> { c with Costs.mem_read = c.Costs.mem_read *. 2. });
    ("mem_read /2", fun c -> { c with Costs.mem_read = c.Costs.mem_read /. 2. });
    ( "bus write x2",
      fun c -> { c with Costs.bus_fixed_write = c.Costs.bus_fixed_write *. 2. } );
    ( "cas contention x2",
      fun c -> { c with Costs.clsm_cas_retry = c.Costs.clsm_cas_retry *. 2. } );
    ( "cas contention /2",
      fun c -> { c with Costs.clsm_cas_retry = c.Costs.clsm_cas_retry /. 2. } );
    ( "ht factor 1.0",
      fun c -> { c with Costs.ht_factor = 1.0; cross_chip_factor = 1.0 } );
    ( "disk reads x2",
      fun c -> { c with Costs.disk_read = c.Costs.disk_read *. 2. } );
    ( "leveldb read CS x2",
      fun c -> { c with Costs.leveldb_read_cs = c.Costs.leveldb_read_cs *. 2. } );
  ]

let run () =
  line "";
  line "== Sensitivity: headline ratios under 2x parameter perturbations ==";
  line
    "   (paper: writes ~1.8x best competitor @8 and 2.5x self-scaling; reads \
     >2x LevelDB @16; RMW ~2.5x striping @8)";
  line "%-22s %14s %14s %14s %14s" "perturbation" "write vs best"
    "write scaling" "read vs LDB" "rmw vs stripe";
  let ok = ref true in
  List.iter
    (fun (name, f) ->
      let h = run_headline (f Costs.default) in
      line "%-22s %14.2f %14.2f %14.2f %14.2f" name h.write_ratio_at_8
        h.write_scaling h.read_ratio_at_16 h.rmw_ratio_at_8;
      if
        h.write_ratio_at_8 < 1.1 || h.write_scaling < 1.4
        || h.read_ratio_at_16 < 1.1 || h.rmw_ratio_at_8 < 1.4
      then ok := false)
    perturbations;
  line "   every row > 1: cLSM's advantage follows from the disciplines%s"
    (if !ok then " (all margins held)" else " (!! some margin collapsed)")
