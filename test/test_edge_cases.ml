(* Edge cases across the stack: iterators pinned across compactions,
   released-snapshot misuse, sync-WAL durability, empty stores, validator
   negatives, capacity limits. *)

open Clsm_core

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_test_edge_%d_%d" (Unix.getpid ()) !counter)

let small_opts ?(wal_sync = `Async) dir =
  let base = Options.default ~dir in
  {
    base with
    Options.memtable_bytes = 16 * 1024;
    wal_sync;
    cache_bytes = 1 lsl 20;
    lsm =
      {
        base.Options.lsm with
        Clsm_lsm.Lsm_config.level1_max_bytes = 64 * 1024;
        target_file_size = 16 * 1024;
        block_size = 1024;
        l0_compaction_trigger = 2;
      };
  }

(* ---------- iterators pinned across compactions ---------- *)

let iterator_survives_compaction () =
  (* An open iterator holds references on its components; a compaction that
     obsoletes and deletes the underlying files must not disturb it. *)
  let dir = fresh_dir () in
  let db = Db.open_store (small_opts dir) in
  let n = 800 in
  for i = 0 to n - 1 do
    Db.put db ~key:(Printf.sprintf "k%05d" i) ~value:(string_of_int i)
  done;
  Db.compact_now db;
  let it = Db.iterator db in
  Db.iter_seek_first it;
  (* consume a prefix *)
  for _ = 1 to 100 do
    Db.iter_next it
  done;
  (* rewrite everything and compact twice: the iterator's files become
     obsolete and are unlinked once unpinned *)
  for i = 0 to n - 1 do
    Db.put db ~key:(Printf.sprintf "k%05d" i) ~value:"NEW"
  done;
  Db.compact_now db;
  Db.compact_now db;
  (* the iterator must still read the old values to the end *)
  let count = ref 100 and wrong = ref 0 in
  while Db.iter_valid it do
    let k = Db.iter_key it and v = Db.iter_value it in
    let i = int_of_string (String.sub k 1 5) in
    if v <> string_of_int i then incr wrong;
    incr count;
    Db.iter_next it
  done;
  Alcotest.(check int) "iterator saw every old binding" n !count;
  Alcotest.(check int) "iterator never saw new values" 0 !wrong;
  Db.iter_close it;
  (* after closing, live reads see the new values *)
  Alcotest.(check (option string)) "live read" (Some "NEW") (Db.get db "k00042");
  Db.close db

let snapshot_read_through_compacted_files () =
  let dir = fresh_dir () in
  let db = Db.open_store (small_opts dir) in
  for i = 0 to 400 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:"v1"
  done;
  Db.compact_now db;
  let s = Db.get_snap db in
  for i = 0 to 400 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:"v2"
  done;
  Db.compact_now db;
  Db.compact_now db;
  let wrong = ref 0 in
  for i = 0 to 400 do
    if Db.get_at db s (Printf.sprintf "k%04d" i) <> Some "v1" then incr wrong
  done;
  Alcotest.(check int) "snapshot stable across compactions" 0 !wrong;
  Db.release_snapshot db s;
  Db.close db

(* ---------- misuse ---------- *)

let released_snapshot_rejected () =
  let dir = fresh_dir () in
  let db = Db.open_store (small_opts dir) in
  Db.put db ~key:"k" ~value:"v";
  let s = Db.get_snap db in
  Db.release_snapshot db s;
  (match Db.get_at db s "k" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "read through released snapshot accepted");
  Db.close db

let close_is_idempotent () =
  let dir = fresh_dir () in
  let db = Db.open_store (small_opts dir) in
  Db.put db ~key:"k" ~value:"v";
  Db.close db;
  Db.close db

(* ---------- sync WAL durability ---------- *)

let sync_wal_survives_crash_without_flush () =
  let dir = fresh_dir () in
  let opts = small_opts ~wal_sync:`Per_write dir in
  let db = Db.open_store opts in
  for i = 0 to 49 do
    Db.put db ~key:(Printf.sprintf "k%03d" i) ~value:"durable"
  done;
  (* no flush_wal: sync mode must have persisted every put already *)
  Db.simulate_crash db;
  let db = Db.open_store opts in
  let missing = ref 0 in
  for i = 0 to 49 do
    if Db.get db (Printf.sprintf "k%03d" i) = None then incr missing
  done;
  Alcotest.(check int) "sync WAL loses nothing" 0 !missing;
  Db.close db

(* ---------- empty / degenerate stores ---------- *)

let empty_store_operations () =
  let dir = fresh_dir () in
  let db = Db.open_store (small_opts dir) in
  Alcotest.(check (list (pair string string))) "empty range" [] (Db.range db);
  let it = Db.iterator db in
  Db.iter_seek_first it;
  Alcotest.(check bool) "empty iterator invalid" false (Db.iter_valid it);
  Db.iter_seek it "anything";
  Alcotest.(check bool) "seek on empty invalid" false (Db.iter_valid it);
  Db.iter_close it;
  Alcotest.(check (list string)) "empty store verifies" []
    (Db.verify_integrity db);
  Db.compact_now db;
  Alcotest.(check int) "no files created" 0
    (List.fold_left ( + ) 0 (Db.level_file_counts db));
  let s = Db.get_snap db in
  Alcotest.(check (option string)) "snapshot of empty" None (Db.get_at db s "x");
  Db.release_snapshot db s;
  Db.close db;
  (* reopen of an empty store *)
  let db = Db.open_store (small_opts dir) in
  Alcotest.(check (option string)) "still empty" None (Db.get db "x");
  Db.close db

let large_values_roundtrip () =
  let dir = fresh_dir () in
  let db = Db.open_store (small_opts dir) in
  (* values far larger than the block size *)
  let big = String.init 100_000 (fun i -> Char.chr (32 + (i mod 90))) in
  Db.put db ~key:"big1" ~value:big;
  Db.put db ~key:"big2" ~value:(String.make 50_000 'q');
  Db.compact_now db;
  Alcotest.(check bool) "big value intact on disk" true
    (Db.get db "big1" = Some big);
  Alcotest.(check (list string)) "verifies" [] (Db.verify_integrity db);
  Db.close db

let empty_key_and_value () =
  let dir = fresh_dir () in
  let db = Db.open_store (small_opts dir) in
  Db.put db ~key:"" ~value:"empty-key";
  Db.put db ~key:"k" ~value:"";
  Db.compact_now db;
  Alcotest.(check (option string)) "empty key" (Some "empty-key") (Db.get db "");
  Alcotest.(check (option string)) "empty value" (Some "") (Db.get db "k");
  Db.close db;
  let db = Db.open_store (small_opts dir) in
  Alcotest.(check (option string)) "empty key recovered" (Some "empty-key")
    (Db.get db "");
  Db.close db

(* ---------- validator negatives ---------- *)

let validate_detects_level_overlap () =
  let open Clsm_lsm in
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let make_file number lo hi =
    let b =
      Clsm_sstable.Table_builder.create ~cmp:Internal_key.comparator
        ~path:(Table_file.table_path ~dir number)
        ()
    in
    Clsm_sstable.Table_builder.add b ~key:(Internal_key.make lo 1) ~value:"\000x";
    Clsm_sstable.Table_builder.add b ~key:(Internal_key.make hi 2) ~value:"\000y";
    ignore (Clsm_sstable.Table_builder.finish b);
    Clsm_primitives.Refcounted.create ~release:Table_file.release
      (Table_file.open_number ~dir number)
  in
  let f1 = make_file 1 "a" "m" in
  let f2 = make_file 2 "k" "z" in
  (* deliberately overlapping at level 1 *)
  let levels = Array.make 2 [] in
  levels.(0) <- [ f1; f2 ];
  let v = Version.create ~l0:[] ~levels in
  let contains_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "overlap reported" true
    (List.exists (fun p -> contains_sub p "overlap") (Version.validate v));
  Version.release v;
  List.iter Clsm_primitives.Refcounted.retire [ f1; f2 ]

(* ---------- cache / active set limits ---------- *)

let cache_clear_and_stats () =
  let c = Clsm_sstable.Cache.create ~shards:2 ~capacity:10 ~weight:(fun _ -> 1) () in
  Clsm_sstable.Cache.insert c "a" 1;
  Clsm_sstable.Cache.insert c "b" 2;
  Alcotest.(check int) "cardinal" 2 (Clsm_sstable.Cache.cardinal c);
  Clsm_sstable.Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Clsm_sstable.Cache.cardinal c);
  Alcotest.(check (option int)) "miss after clear" None
    (Clsm_sstable.Cache.find c "a")

let active_set_tiny_capacity_contention () =
  let open Clsm_primitives in
  let s = Active_set.create ~capacity:2 () in
  let worker seed () =
    for i = 1 to 2_000 do
      let h = Active_set.add s ((seed * 1_000_000) + i) in
      Active_set.remove s h
    done
  in
  List.map Domain.spawn [ worker 1; worker 2 ] |> List.iter Domain.join;
  Alcotest.(check int) "drained" 0 (Active_set.cardinal s)

(* ---------- sim sanity extras ---------- *)

let sim_partitioned_deterministic () =
  let open Clsm_sim_lsm in
  let spec = Clsm_workload.Workload_spec.production ~read_ratio:0.9 ~space:100_000 in
  let cfg =
    Experiment.config ~duration:0.05 ~system:System.Leveldb ~threads:8 spec
  in
  let a = Experiment.run_partitioned ~partitions:4 cfg in
  let b = Experiment.run_partitioned ~partitions:4 cfg in
  Alcotest.(check int) "deterministic" a.Experiment.ops b.Experiment.ops;
  Alcotest.(check bool) "did work" true (a.Experiment.ops > 0);
  match Experiment.run_partitioned ~partitions:3 cfg with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "threads not divisible by partitions accepted"

let suites =
  [
    ( "edge.iterators",
      [
        Alcotest.test_case "iterator survives compaction" `Quick
          iterator_survives_compaction;
        Alcotest.test_case "snapshot reads through compactions" `Quick
          snapshot_read_through_compacted_files;
      ] );
    ( "edge.misuse",
      [
        Alcotest.test_case "released snapshot rejected" `Quick
          released_snapshot_rejected;
        Alcotest.test_case "close idempotent" `Quick close_is_idempotent;
      ] );
    ( "edge.durability",
      [
        Alcotest.test_case "sync WAL survives crash" `Quick
          sync_wal_survives_crash_without_flush;
      ] );
    ( "edge.degenerate",
      [
        Alcotest.test_case "empty store" `Quick empty_store_operations;
        Alcotest.test_case "large values" `Quick large_values_roundtrip;
        Alcotest.test_case "empty key/value" `Quick empty_key_and_value;
      ] );
    ( "edge.validate",
      [
        Alcotest.test_case "level overlap detected" `Quick
          validate_detects_level_overlap;
      ] );
    ( "edge.limits",
      [
        Alcotest.test_case "cache clear" `Quick cache_clear_and_stats;
        Alcotest.test_case "tiny active set under contention" `Quick
          active_set_tiny_capacity_contention;
      ] );
    ( "edge.sim",
      [
        Alcotest.test_case "partitioned runs deterministic" `Quick
          sim_partitioned_deterministic;
      ] );
  ]
