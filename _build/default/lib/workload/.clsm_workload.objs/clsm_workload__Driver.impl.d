lib/workload/driver.ml: Atomic Domain Format Histogram Key_dist List Rng Store_ops Unix Workload_spec
