examples/web_serving.mli:
